"""Process-sharded SPMD backend: rank blocks across worker processes.

``run_spmd(..., backend="proc")`` breaks the thread ceiling: the ``p``
rank ids are sharded into contiguous blocks across ``N`` spawned worker
processes, each hosting its block as threads from a child-local
:class:`~repro.mpi.engine.SpmdPool`.  The per-rank programming model
(:class:`~repro.mpi.comm.Comm` over a shared context) is unchanged —
what changes is where a context's members live.

Cross-process collectives reuse the staged single-barrier protocol
(PRs 1-2) unchanged: because every collective already funnels its data
through one designated compute action, a collective spanning ``K``
processes costs ``K-1`` *deposit* blob writes (each remote process's
local stage entries, pickled into a warm shared-memory arena) plus one
*release* blob (the computed payload and the fully merged stage) — not
per-edge IPC.  The **home** process (lowest worker index holding a
member) runs the compute action; queue messages carry only shm segment
names and generation numbers.

Determinism contract: virtual clocks, results, failure reprs, chaos
report hashes and trace counters are **bit-for-bit identical** to the
threaded backend, for any worker count.  The argument, piece by piece:
deposits carry ``(obj, clock)`` exactly as staged locally; the compute
actions are rank-agnostic pure functions of the stage; reductions fold
in rank order on the merged stage; pickling of floats and numpy arrays
is value-exact; and the only host-dependent quantities the engine
records (``coll.sync_wait`` / ``p2p.wait`` counters) are excluded from
every golden.

Worker processes are **spawned** (never forked — the parent holds live
pool threads) and persist in a :class:`ProcPool`, so sweeps pay
interpreter start-up once; shm arenas stay warm across runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue
import threading
from bisect import bisect_right
from pathlib import Path
from typing import Any, Callable, Sequence

import multiprocessing as mp

from .comm import Comm, SimWorld
from .context import _SAFETY_TIMEOUT, AbortFlag, _CondBarrier
from .engine import _COARSE_SWITCH_RANKS, SpmdPool, SpmdResult
from .errors import RankFailure, SimAbort
from .shm import ShmArena, ShmAttachCache

__all__ = ["ProcPool", "default_proc_pool", "run_spmd_proc", "shard_bounds"]

#: True inside a worker process (guards against nested proc backends).
_IN_WORKER = False

#: The worker's world for the run in progress — the anchor
#: :func:`_rebuild_ctx` resolves unpickled context identities against.
#: One run is active per worker at a time, so a single slot suffices.
_CURRENT_WORLD: "ProcWorld | None" = None


def shard_bounds(p: int, nprocs: int) -> list[int]:
    """Contiguous block bounds: worker ``i`` owns ``[b[i], b[i+1])``."""
    base, rem = divmod(p, nprocs)
    bounds = [0]
    for i in range(nprocs):
        bounds.append(bounds[-1] + base + (1 if i < rem else 0))
    return bounds


def _ctx_digest(ctx_id: tuple) -> str:
    """Short stable digest of a context identity (shm arena naming)."""
    return hashlib.blake2s(repr(ctx_id).encode(), digest_size=6).hexdigest()


def _rebuild_ctx(ctx_id: tuple, group: tuple) -> "ProcCommContext":
    """Unpickle hook: resolve a context identity in the local world."""
    world = _CURRENT_WORLD
    if world is None:
        raise RuntimeError("no active proc-backend world in this process")
    return world._get_or_create(ctx_id, group)


class _ProcAbortFlag(AbortFlag):
    """Abort flag whose ``set`` also fans out to sibling processes.

    ``set_local`` is what the router calls on receiving a sibling's
    abort broadcast — it must not echo the broadcast back.
    """

    def __init__(self, state: "_WorkerState", run_id: int):
        super().__init__()
        self._state = state
        self._run_id = run_id
        self._bcast_lock = threading.Lock()
        self._bcast_done = False

    def set(self) -> None:
        with self._bcast_lock:
            first = not self._bcast_done
            self._bcast_done = True
        super().set()
        if first:
            self._state.broadcast_abort(self._run_id)

    def set_local(self) -> None:
        with self._bcast_lock:
            self._bcast_done = True
        super().set()


class _ProxyChannel:
    """Send-side stand-in for a channel whose receiver lives elsewhere."""

    __slots__ = ("_world", "_owner", "_src", "_dst", "_tag")

    def __init__(self, world: "ProcWorld", owner: int, src: int, dst: int,
                 tag: int):
        self._world = world
        self._owner = owner
        self._src = src
        self._dst = dst
        self._tag = tag

    def put(self, item: Any) -> None:
        self._world._state.send(
            self._owner,
            ("p2p", self._world.run_id, self._src, self._dst, self._tag,
             item))

    def get_nowait(self) -> Any:  # pragma: no cover - receive is local-only
        raise RuntimeError("cannot receive on a remote rank's channel")

    def get(self, abort: AbortFlag) -> Any:  # pragma: no cover - see above
        raise RuntimeError("cannot receive on a remote rank's channel")


class ProcCommContext:
    """Context twin of :class:`CommContext` whose members span processes.

    All-local groups (the common case after a few splits) delegate to
    the exact thread-backend barrier.  Multi-process groups run a
    two-level barrier: local members arrive on a condition variable;
    the last local arriver becomes the process *representative*.  A
    non-home representative publishes its local deposits (shm blob) to
    the home process and waits; the home representative merges every
    process's deposits into the captured stage, runs the collective's
    action exactly once, publishes ``(payload, merged_stage)``, and
    releases.  Local deposit objects are never pickled for their own
    process — readers see them by reference, as on the thread backend.
    """

    def __init__(self, ctx_id: tuple, group: Sequence[int],
                 world: "ProcWorld"):
        self.ctx_id = ctx_id
        self.group: tuple[int, ...] = tuple(group)
        self.size = len(self.group)
        self.abort = world.abort
        self._world = world
        self.stage: list[Any] = [None] * self.size
        state = world._state
        owner = world.owner
        me = state.proc_index
        procs = sorted({owner(g) for g in self.group})
        self._procs = procs
        self._home = procs[0]
        self._local = [i for i, g in enumerate(self.group) if owner(g) == me]
        self._multi = len(procs) > 1
        if not self._multi:
            self._barrier = _CondBarrier(self.size, self.abort)
            return
        self._is_home = self._home == me
        self._cond = threading.Condition()
        self.abort.register(self._cond)
        self._count = 0
        self._gen = 0
        self._payload: Any = None
        self._remote: dict[int, dict[int, Any]] = {}
        self._early: list[tuple[int, int, dict[int, Any]]] = []

    def __reduce__(self):
        return (_rebuild_ctx, (self.ctx_id, self.group))

    # -- CommContext API -------------------------------------------------
    def fresh_stage(self) -> list:
        self.stage = [None] * self.size
        return self.stage

    def _current_gen(self) -> int:
        """Generation counter (context-identity minting during splits)."""
        if self._multi:
            return self._gen
        return self._barrier._generation

    def sync(self, action: Callable[[], Any] | None = None) -> Any:
        if not self._multi:
            return self._barrier.wait(self.abort, action)
        abort = self.abort
        abort.check()
        with self._cond:
            gen = self._gen
            self._count += 1
            if self._count == len(self._local):
                try:
                    if self._is_home:
                        payload = self._home_cycle(gen, action)
                    else:
                        payload = self._remote_cycle(gen)
                except BaseException:
                    abort.set()
                    raise
                return payload
            while self._gen == gen and not abort.is_set:
                self._cond.wait(timeout=_SAFETY_TIMEOUT)
            payload = self._payload
        abort.check()
        return payload

    # -- representative paths (called with self._cond held) --------------
    def _home_cycle(self, gen: int, action: Callable[[], Any] | None) -> Any:
        abort = self.abort
        needed = len(self._procs) - 1
        while len(self._remote) < needed and not abort.is_set:
            self._cond.wait(timeout=_SAFETY_TIMEOUT)
        abort.check()
        stage = self.stage  # captured before action may swap it
        for deposits in self._remote.values():
            for i, entry in deposits.items():
                stage[i] = entry
        self._remote = {}
        payload = action() if action is not None else None
        state = self._world._state
        run_id = self._world.run_id
        blob = pickle.dumps((payload, stage), protocol=5)
        name, nbytes = state.arena(self.ctx_id, "r").write(blob)
        for proc in self._procs[1:]:
            state.send(proc,
                       ("release", run_id, self.ctx_id, gen, name, nbytes))
        self._payload = payload
        self._count = 0
        self._gen = gen + 1
        self._drain_early()
        self._cond.notify_all()
        return payload

    def _remote_cycle(self, gen: int) -> Any:
        abort = self.abort
        stage = self.stage
        deposits = {i: stage[i] for i in self._local}
        state = self._world._state
        run_id = self._world.run_id
        blob = pickle.dumps(deposits, protocol=5)
        name, nbytes = state.arena(self.ctx_id, "d").write(blob)
        state.send(self._home,
                   ("stage", run_id, self.ctx_id, gen, state.proc_index,
                    name, nbytes))
        while self._gen == gen and not abort.is_set:
            self._cond.wait(timeout=_SAFETY_TIMEOUT)
        abort.check()
        return self._payload

    # -- router deliveries (any thread; takes self._cond) -----------------
    def _deliver_stage(self, gen: int, src_proc: int,
                       deposits: dict[int, Any]) -> None:
        with self._cond:
            if gen != self._gen:
                self._early.append((gen, src_proc, deposits))
                return
            self._remote[src_proc] = deposits
            self._cond.notify_all()

    def _drain_early(self) -> None:
        """Move buffered next-generation deposits into place (cond held)."""
        if not self._early:
            return
        keep = []
        for gen, src_proc, deposits in self._early:
            if gen == self._gen:
                self._remote[src_proc] = deposits
            else:
                keep.append((gen, src_proc, deposits))
        self._early = keep

    def _deliver_release(self, gen: int, payload: Any,
                         merged: list[Any]) -> None:
        with self._cond:
            if gen != self._gen:  # pragma: no cover - protocol invariant
                raise RuntimeError(
                    f"release for gen {gen} arrived at gen {self._gen} "
                    f"on ctx {self.ctx_id}")
            stage = self.stage
            for i, entry in enumerate(merged):
                if stage[i] is None:
                    stage[i] = entry
            self.stage = [None] * self.size
            self._payload = payload
            self._count = 0
            self._remote = {}
            self._gen = gen + 1
            self._drain_early()
            self._cond.notify_all()


class ProcWorld(SimWorld):
    """World of one worker process: local state for owned ranks, proxies
    and context identities for everything else."""

    def __init__(self, p: int, machine: Any, *, mem_capacity: int | None,
                 faults: Any, tracer: Any, state: "_WorkerState",
                 run_id: int, bounds: list[int]):
        self._state = state
        self.run_id = run_id
        self._bounds = bounds
        self._registry: dict[tuple, ProcCommContext] = {}
        self._reg_lock = threading.RLock()
        self._pending_stage: dict[tuple, list] = {}
        self._proxies: dict[tuple[int, int, int], _ProxyChannel] = {}
        super().__init__(p, machine, mem_capacity=mem_capacity,
                         faults=faults, tracer=tracer)

    def _make_abort(self) -> AbortFlag:
        return _ProcAbortFlag(self._state, self.run_id)

    def owner(self, grank: int) -> int:
        """Worker index hosting a global rank."""
        return bisect_right(self._bounds, grank) - 1

    def make_context(self, group: Sequence[int], parent: Any = None,
                     key: Any = None) -> ProcCommContext:
        if parent is None:
            ctx_id = ("w",)
        else:
            # minted exactly once, by the (single) thread running the
            # parent collective's compute action on the parent's home
            # process; every other process receives the identity inside
            # the pickled release payload
            ctx_id = (*parent.ctx_id, parent._current_gen(), key)
        return self._get_or_create(ctx_id, tuple(group))

    def _get_or_create(self, ctx_id: tuple,
                       group: tuple) -> ProcCommContext:
        with self._reg_lock:
            ctx = self._registry.get(ctx_id)
            if ctx is not None:
                return ctx
            ctx = ProcCommContext(ctx_id, group, self)
            self._registry[ctx_id] = ctx
            pending = self._pending_stage.pop(ctx_id, [])
        for gen, src_proc, deposits in pending:
            ctx._deliver_stage(gen, src_proc, deposits)
        return ctx

    def deliver_stage(self, ctx_id: tuple, gen: int, src_proc: int,
                      deposits: dict[int, Any]) -> None:
        with self._reg_lock:
            ctx = self._registry.get(ctx_id)
            if ctx is None:
                # remote ranks can race ahead of this process's local
                # ranks and deposit into a split child we have not
                # created yet; park the deposits on the world
                self._pending_stage.setdefault(ctx_id, []).append(
                    (gen, src_proc, deposits))
                return
        ctx._deliver_stage(gen, src_proc, deposits)

    def deliver_release(self, ctx_id: tuple, gen: int, payload: Any,
                        merged: list[Any]) -> None:
        with self._reg_lock:
            ctx = self._registry.get(ctx_id)
        if ctx is None:  # pragma: no cover - protocol invariant
            raise RuntimeError(f"release for unknown ctx {ctx_id}")
        ctx._deliver_release(gen, payload, merged)

    def channel(self, src: int, dst: int, tag: int):
        me = self._state.proc_index
        if self._bounds[me] <= dst < self._bounds[me + 1]:
            return super().channel(src, dst, tag)
        key = (src, dst, tag)
        ch = self._proxies.get(key)
        if ch is None:
            with self._channels_lock:
                ch = self._proxies.get(key)
                if ch is None:
                    ch = _ProxyChannel(self, self.owner(dst), src, dst, tag)
                    self._proxies[key] = ch
        return ch


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
class _WorkerState:
    """Everything persistent inside one worker process.

    The main thread is the **router**: it drains this worker's inbox,
    forwarding p2p items into local channels, stage/release blobs into
    contexts, and abort broadcasts into the world flag.  Each submitted
    run is driven by a short-lived driver thread hosting the local rank
    block on a child-local (warm) :class:`SpmdPool`.
    """

    def __init__(self, proc_index: int, nprocs: int, inboxes: list,
                 results: Any, uid: str):
        self.proc_index = proc_index
        self.nprocs = nprocs
        self.inboxes = inboxes
        self.results = results
        self.uid = uid
        self.pool = SpmdPool()
        self.attach = ShmAttachCache()
        self._arenas: dict[tuple[str, tuple], ShmArena] = {}
        self._arena_lock = threading.Lock()
        self._lock = threading.Lock()
        self.world: ProcWorld | None = None
        self.run_id: int | None = None
        self._pending: dict[int, list] = {}

    # -- outbound ------------------------------------------------------
    def send(self, proc: int, msg: tuple) -> None:
        self.inboxes[proc].put(msg)

    def broadcast_abort(self, run_id: int) -> None:
        for i in range(self.nprocs):
            if i != self.proc_index:
                self.send(i, ("abort", run_id))

    def arena(self, ctx_id: tuple, kind: str) -> ShmArena:
        key = (kind, ctx_id)
        with self._arena_lock:
            a = self._arenas.get(key)
            if a is None:
                a = ShmArena(f"sds{self.uid}w{self.proc_index}"
                             f"{kind}{_ctx_digest(ctx_id)}")
                self._arenas[key] = a
            return a

    # -- router --------------------------------------------------------
    def serve(self) -> None:
        inbox = self.inboxes[self.proc_index]
        while True:
            msg = inbox.get()
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "task":
                threading.Thread(target=self._drive, args=(msg[1], msg[2]),
                                 name="spmd-proc-driver",
                                 daemon=True).start()
                continue
            self._dispatch(msg)
        self._cleanup()

    def _dispatch(self, msg: tuple) -> None:
        run_id = msg[1]
        with self._lock:
            if self.run_id is not None and run_id < self.run_id:
                return  # stale straggler from a finished run
            if self.world is None or run_id != self.run_id:
                self._pending.setdefault(run_id, []).append(msg)
                return
            world = self.world
        self._deliver(world, msg)

    def install_world(self, run_id: int, world: ProcWorld) -> None:
        global _CURRENT_WORLD
        with self._lock:
            _CURRENT_WORLD = world
            self.world = world
            self.run_id = run_id
            for rid in [r for r in self._pending if r < run_id]:
                del self._pending[rid]
            pending = self._pending.pop(run_id, [])
        for msg in pending:
            self._deliver(world, msg)

    def _deliver(self, world: ProcWorld, msg: tuple) -> None:
        kind = msg[0]
        if kind == "p2p":
            _, _, src, dst, tag, item = msg
            world.channel(src, dst, tag).put(item)
        elif kind == "stage":
            _, _, ctx_id, gen, src_proc, name, nbytes = msg
            deposits = pickle.loads(self.attach.read(name, nbytes))
            world.deliver_stage(ctx_id, gen, src_proc, deposits)
        elif kind == "release":
            _, _, ctx_id, gen, name, nbytes = msg
            payload, merged = pickle.loads(self.attach.read(name, nbytes))
            world.deliver_release(ctx_id, gen, payload, merged)
        elif kind == "abort":
            world.abort.set_local()

    # -- driver --------------------------------------------------------
    def _drive(self, run_id: int, blob: bytes) -> None:
        try:
            (fn, args, kwargs, p, machine, mem_capacity, faults,
             traced) = pickle.loads(blob)
            bounds = shard_bounds(p, self.nprocs)
            tracer = None
            if traced:
                from ..obs import Tracer
                tracer = Tracer(p)
            world = ProcWorld(p, machine, mem_capacity=mem_capacity,
                              faults=faults, tracer=tracer, state=self,
                              run_id=run_id, bounds=bounds)
            self.install_world(run_id, world)
            ranks = range(bounds[self.proc_index],
                          bounds[self.proc_index + 1])
            results: dict[int, Any] = {}
            failures: list[tuple[int, BaseException]] = []
            failures_lock = threading.Lock()

            def runner(rank: int) -> None:
                comm = Comm(world, world.world_ctx, rank)
                try:
                    results[rank] = fn(comm, *args, **kwargs)
                except SimAbort:
                    pass
                except BaseException as exc:  # noqa: BLE001
                    with failures_lock:
                        failures.append((rank, exc))
                    world.abort.set()

            self.pool.run_ranks(runner, ranks)
            data = self._encode_payload(
                world, list(ranks), results, failures, tracer)
            self.results.put(("done", run_id, self.proc_index, data))
        except BaseException as exc:  # noqa: BLE001 - never hang the parent
            try:
                self.results.put(("crash", run_id, self.proc_index,
                                  f"{type(exc).__name__}: {exc}"))
            except Exception:  # pragma: no cover
                pass

    def _encode_payload(self, world: ProcWorld, ranks: list[int],
                        results: dict[int, Any],
                        failures: list[tuple[int, BaseException]],
                        tracer: Any) -> bytes:
        def sane_exc(exc: BaseException) -> BaseException:
            try:
                pickle.loads(pickle.dumps(exc))
                return exc
            except Exception:
                return RuntimeError(f"[{type(exc).__name__}] {exc}")

        payload = {
            "results": results,
            "clocks": {r: world.clocks[r] for r in ranks},
            "phase_times": {r: dict(world.phase_times[r]) for r in ranks},
            "counters": {r: dict(world.counters[r]) for r in ranks},
            "mem_peaks": {r: world.mem[r].peak for r in ranks},
            "traces": {r: list(world.traces[r]) for r in ranks},
            "failures": [(r, sane_exc(e)) for r, e in failures],
        }
        if tracer is not None:
            payload["trace"] = {
                "spans": {r: tracer.spans[r] for r in ranks},
                "instants": {r: tracer.instants[r] for r in ranks},
                "counters": {r: tracer.counters[r] for r in ranks},
                "edges": {r: tracer._edges[r] for r in ranks
                          if tracer._edges[r] is not None},
            }
        try:
            return pickle.dumps(payload, protocol=5)
        except Exception:
            payload["results"] = {
                r: self._sanitize_result(v) for r, v in results.items()}
            return pickle.dumps(payload, protocol=5)

    @staticmethod
    def _sanitize_result(value: Any) -> Any:
        try:
            pickle.dumps(value)
            return value
        except Exception:
            return f"<unpicklable result: {type(value).__name__}>"

    def _cleanup(self) -> None:
        for arena in self._arenas.values():
            arena.close()
        self.attach.close()


def _worker_main(proc_index: int, nprocs: int, inboxes: list, results: Any,
                 uid: str) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    _WorkerState(proc_index, nprocs, inboxes, results, uid).serve()


# ---------------------------------------------------------------------------
# parent-side pool
# ---------------------------------------------------------------------------
_pool_counter = 0
_pool_counter_lock = threading.Lock()


class ProcPool:
    """Persistent pool of spawned worker processes (one rank block each).

    One pool runs one world at a time; workers idle on their inboxes
    between runs (zero CPU) with interpreters, rank-thread pools and
    shm arenas warm.  A pool whose worker died is *broken* and refuses
    further runs (create a fresh one); :meth:`shutdown` is final.
    """

    def __init__(self, procs: int):
        if procs < 1:
            raise ValueError("procs must be >= 1")
        global _pool_counter
        with _pool_counter_lock:
            _pool_counter += 1
            self._uid = f"{os.getpid():x}p{_pool_counter}"
        self.procs = procs
        self._mp = mp.get_context("spawn")
        self._inboxes = [self._mp.SimpleQueue() for _ in range(procs)]
        self._results = self._mp.Queue()
        self._workers: list = []
        self._lock = threading.Lock()
        self._run_seq = 0
        self._started = False
        self._broken = False

    @property
    def size(self) -> int:
        """Live worker-process count."""
        return len(self._workers)

    def _ensure_started(self) -> None:
        if self._started:
            return
        # spawn re-imports this package in the child: make sure the
        # package root is importable even when the parent got it from a
        # sys.path edit rather than the environment
        root = str(Path(__file__).resolve().parents[2])
        old_pp = os.environ.get("PYTHONPATH")
        if root not in (old_pp or "").split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                root if not old_pp else root + os.pathsep + old_pp)
        try:
            for i in range(self.procs):
                w = self._mp.Process(
                    target=_worker_main, name=f"spmd-proc-{i}",
                    args=(i, self.procs, self._inboxes, self._results,
                          self._uid),
                    daemon=True)
                w.start()
                self._workers.append(w)
        finally:
            if old_pp is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = old_pp
        self._started = True

    def run(self, task: tuple) -> dict[int, dict]:
        """Broadcast one task; gather every worker's payload dict."""
        with self._lock:
            if self._broken:
                raise RuntimeError("proc pool is broken (a worker died or "
                                   "was shut down); create a fresh pool")
            self._ensure_started()
            self._run_seq += 1
            run_id = self._run_seq
            try:
                blob = pickle.dumps(task, protocol=5)
            except Exception as exc:
                raise TypeError(
                    "backend='proc' ships the rank program to worker "
                    "processes: fn, args and kwargs must be picklable "
                    "(module-level callables, no closures)") from exc
            for q in self._inboxes:
                q.put(("task", run_id, blob))
            payloads: dict[int, dict] = {}
            while len(payloads) < self.procs:
                try:
                    msg = self._results.get(timeout=1.0)
                except queue.Empty:
                    dead = [i for i, w in enumerate(self._workers)
                            if not w.is_alive()]
                    if dead:
                        self._broken = True
                        raise RuntimeError(
                            f"proc backend worker(s) {dead} died "
                            "mid-run") from None
                    continue
                kind, rid, proc, data = msg
                if rid != run_id:
                    continue  # straggler from an aborted earlier run
                if kind == "crash":
                    self._broken = True
                    raise RuntimeError(
                        f"proc backend worker {proc} failed: {data}")
                payloads[proc] = pickle.loads(data)
            return payloads

    def shutdown(self) -> None:
        """Stop workers gracefully (unlinking their shm arenas)."""
        with self._lock:
            self._broken = True
            if not self._started:
                return
            for q in self._inboxes:
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - teardown race
                    pass
            for w in self._workers:
                w.join(timeout=5.0)
            for w in self._workers:
                if w.is_alive():  # pragma: no cover - hung worker
                    w.terminate()
            self._workers.clear()
            self._started = False


_default_pools: dict[int, ProcPool] = {}
_default_pools_lock = threading.Lock()


def default_proc_pool(procs: int) -> ProcPool:
    """Process-wide warm pool registry, one pool per worker count."""
    import atexit

    with _default_pools_lock:
        pool = _default_pools.get(procs)
        if pool is None or pool._broken:
            pool = ProcPool(procs)
            _default_pools[procs] = pool
            atexit.register(pool.shutdown)
        return pool


def _auto_procs(p: int) -> int:
    """Scale-dependent default worker count.

    Even on few-core hosts more processes help at large ``p``: the win
    is fewer threads per interpreter (smaller GIL convoys and wake
    storms), not core-parallel compute.
    """
    if p >= 8192:
        return 8
    if p >= 1024:
        return 4
    return 2


# ---------------------------------------------------------------------------
# entry point (dispatched from run_spmd)
# ---------------------------------------------------------------------------
def run_spmd_proc(fn: Callable[..., Any], p: int, *, machine: Any,
                  mem_capacity: int | None, args: Sequence[Any],
                  kwargs: dict[str, Any], check: bool, faults: Any,
                  tracer: Any, procs: int | None = None,
                  pool: ProcPool | None = None) -> SpmdResult:
    """Run one SPMD world sharded across worker processes.

    Same contract as :func:`repro.mpi.engine.run_spmd`; see the module
    docstring for the bit-for-bit determinism argument.
    """
    if _IN_WORKER:
        raise RuntimeError("nested backend='proc' inside a proc worker")
    if pool is None:
        nprocs = min(procs if procs is not None else _auto_procs(p), p)
        pool = default_proc_pool(nprocs)
    nprocs = pool.procs
    bounds = shard_bounds(p, nprocs)
    task = (fn, tuple(args), dict(kwargs or {}), p, machine, mem_capacity,
            faults, tracer is not None)
    payloads = pool.run(task)

    results: list[Any] = [None] * p
    clocks = [0.0] * p
    phase_times: list[dict[str, float]] = [dict() for _ in range(p)]
    counters: list[dict[str, float]] = [dict() for _ in range(p)]
    mem_peaks = [0] * p
    traces: list[list] = [[] for _ in range(p)]
    failures: list[tuple[int, BaseException]] = []
    for _, payload in sorted(payloads.items()):
        for r, v in payload["results"].items():
            results[r] = v
        for r, v in payload["clocks"].items():
            clocks[r] = v
        for r, v in payload["phase_times"].items():
            phase_times[r] = v
        for r, v in payload["counters"].items():
            counters[r] = v
        for r, v in payload["mem_peaks"].items():
            mem_peaks[r] = v
        for r, v in payload["traces"].items():
            traces[r] = v
        failures.extend(payload["failures"])
        shard_trace = payload.get("trace")
        if tracer is not None and shard_trace is not None:
            for r, spans in shard_trace["spans"].items():
                tracer.spans[r] = spans
            for r, instants in shard_trace["instants"].items():
                tracer.instants[r] = instants
            for r, cnt in shard_trace["counters"].items():
                tracer.counters[r] = cnt
            for r, row in shard_trace["edges"].items():
                tracer._edges[r] = row

    failure: RankFailure | None = None
    if failures:
        failures.sort(key=lambda rf: rf[0])
        failure = RankFailure(failures)
        if check:
            raise failure from failure.cause

    max_shard = max(bounds[i + 1] - bounds[i] for i in range(nprocs))
    return SpmdResult(
        p=p,
        results=results,
        clocks=clocks,
        phase_times=phase_times,
        counters=counters,
        mem_peaks=mem_peaks,
        failure=failure,
        traces=traces,
        extras={
            "backend": "proc",
            "workers": nprocs,
            "pool_threads": max_shard,
            "shards": [[bounds[i], bounds[i + 1]] for i in range(nprocs)],
            "coarse_switch": max_shard >= _COARSE_SWITCH_RANKS,
        },
    )
