"""Warm shared-memory arenas for the process-sharded engine backend.

The staged-collective protocol funnels every collective's data through
one designated compute step, so a collective that spans worker
processes needs exactly two kinds of cross-process blobs: each remote
process's *deposit* shard (its local ranks' staged entries) and the
home process's *release* payload (the computed result plus the merged
stage).  Both travel as pickled bytes in named
``multiprocessing.shared_memory`` segments; the queue message carries
only ``(segment_name, nbytes)``.

Segments are **warm**: each (context, kind) pair owns one writer-side
:class:`ShmArena` that is reused collective after collective and run
after run, growing by doubling when a blob outgrows it.  Reuse is
race-free without any locking because collectives on one communicator
are lockstep — a writer can only reach its next write after every
reader of the previous generation has consumed the blob (the readers'
ranks must pass the released barrier, and the writer's next collective
cannot complete before their next deposits arrive).

Readers attach by name through a :class:`ShmAttachCache`; attached
segments are kept mapped (names repeat, thanks to the warm arenas), and
copied out with ``bytes(...)`` before unpickling so no live view ever
aliases memory the owner will rewrite.
"""

from __future__ import annotations

from multiprocessing import shared_memory

__all__ = ["ShmArena", "ShmAttachCache"]

#: Smallest segment: 64 KiB (SharedMemory rounds to pages anyway).
_MIN_EXP = 16

# Note on the resource tracker: CPython < 3.13 registers a segment on
# *attach* as well as on create, but every ProcPool worker inherits the
# parent's tracker process (the fd rides along with spawn), and the
# tracker's cache is a set — so a reader's re-registration of an
# owner-created name is an idempotent no-op, and the owner's unlink
# unregisters exactly once.  Explicitly unregistering on attach would
# be wrong here: it would strip the owner's registration from the
# shared cache and make the eventual unlink a double-unregister.


class ShmArena:
    """One named, size-doubling shared-memory segment (writer-owned).

    ``base`` must be unique per (pool, worker, context, kind); the
    capacity exponent is appended to the name, so readers can attach
    purely by the name carried in the message and a regrown arena never
    collides with its smaller predecessor.
    """

    __slots__ = ("_base", "_seg")

    def __init__(self, base: str):
        self._base = base
        self._seg: shared_memory.SharedMemory | None = None

    def write(self, blob: bytes) -> tuple[str, int]:
        """Store ``blob``, growing if needed; returns ``(name, nbytes)``."""
        need = len(blob)
        seg = self._seg
        if seg is None or need > seg.size:
            exp = max(_MIN_EXP, max(need - 1, 1).bit_length())
            if seg is not None:
                seg.close()
                seg.unlink()
            seg = shared_memory.SharedMemory(
                name=f"{self._base}e{exp}", create=True, size=1 << exp)
            self._seg = seg
        seg.buf[:need] = blob
        return seg.name, need

    def close(self) -> None:
        """Unmap and unlink the backing segment (owner shutdown)."""
        if self._seg is not None:
            self._seg.close()
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._seg = None


class ShmAttachCache:
    """Reader-side cache of attached segments, keyed by name."""

    __slots__ = ("_segs",)

    def __init__(self) -> None:
        self._segs: dict[str, shared_memory.SharedMemory] = {}

    def read(self, name: str, nbytes: int) -> bytes:
        """Copy ``nbytes`` out of the named segment (attaching once)."""
        seg = self._segs.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            self._segs[name] = seg
        return bytes(seg.buf[:nbytes])

    def close(self) -> None:
        """Unmap every cached segment (unlinking is the owner's job)."""
        for seg in self._segs.values():
            seg.close()
        self._segs.clear()
