"""Shared state behind one simulated communicator.

A :class:`CommContext` is created once per communicator (world or
split) and shared by its member ranks' :class:`~repro.mpi.comm.Comm`
handles.  It provides abortable barrier synchronisation and a staging
area for collective data movement.

Collectives follow a single-barrier protocol with a shared compute
step::

    deposit into stage[my_index]
    shared = sync(action)   # everyone deposited; the LAST arriver runs
                            # ``action`` once; its return value is
                            # handed to every waiter of this generation
    read captured stage / shared

The barrier itself carries the collective's result: the last arriver's
``action`` computes it and swaps a *fresh* stage list into the context
before releasing, so readers keep working off their captured reference
to the old list and no release barrier is needed — one barrier cycle
per collective instead of two (at p=1024 the barrier wake storm is the
dominant host cost, so this halves it).

Running the collective's shared result computation exactly once (by
whichever rank happens to arrive last — the inputs are fully staged, so
the result is independent of which thread computes it) replaces the
seed engine's per-rank reduction loops: what used to be O(p) Python
work on each of p ranks (O(p^2) aggregate, O(p^3) for the alltoallv
size scans) is now computed a single time per collective.

The payload hand-off is race-free without extra state: a later
generation's last arriver can only overwrite ``_payload`` after every
party has arrived at that later barrier, which requires each of them to
have first woken from — and read the payload of — the previous one.

All blocking primitives are event-driven: waiters sleep on condition
variables that are notified by barrier release, channel puts, and —
crucially — by :meth:`AbortFlag.set`, so blocked ranks burn zero CPU
and abort latency is bounded by a wakeup, not a polling interval.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from .errors import SimAbort

#: Lost-wakeup safety net (real seconds).  Every blocking wait is woken
#: explicitly (barrier release, channel put, abort); this timeout only
#: bounds the damage of a hypothetical missed notification and costs
#: one spurious wakeup every few seconds while blocked.
_SAFETY_TIMEOUT = 5.0

#: Retained for backwards compatibility with older callers/tests that
#: imported the poll interval; the engine itself no longer polls.
_POLL = 0.05


class AbortFlag:
    """World-wide failure flag checked by every blocking primitive.

    Blocking primitives register their condition variables here;
    :meth:`set` notifies all of them, so a failing rank wakes every
    blocked sibling immediately instead of after a polling interval.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._conds: list[threading.Condition] = []

    def register(self, cond: threading.Condition) -> None:
        """Subscribe a condition variable to abort notifications."""
        with self._lock:
            self._conds.append(cond)

    def set(self) -> None:
        self._event.set()
        with self._lock:
            conds = list(self._conds)
        for cond in conds:
            with cond:
                cond.notify_all()

    @property
    def is_set(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise SimAbort("world aborted by a failing rank")


class _CondBarrier:
    """Sense-reversing generation barrier with a last-arriver action.

    Unlike :class:`threading.Barrier`, an aborting rank cannot corrupt
    the barrier for survivors — survivors are woken by the abort flag's
    ``notify_all`` and unwind with :class:`SimAbort`.

    The optional ``action`` runs exactly once per barrier cycle, by the
    last-arriving thread, *before* the others are released — the hook
    the collectives use to compute their shared result while every
    deposit is guaranteed staged and no reader has been released yet.
    Whatever ``action`` returns is handed to every thread of the cycle
    as :meth:`wait`'s return value, which is what lets a collective
    complete in a single barrier.
    """

    def __init__(self, parties: int, abort: AbortFlag):
        self._parties = parties
        self._count = 0
        self._generation = 0
        self._payload: Any = None
        self._cond = threading.Condition()
        abort.register(self._cond)

    def wait(self, abort: AbortFlag,
             action: Callable[[], Any] | None = None) -> Any:
        abort.check()
        with self._cond:
            gen = self._generation
            self._count += 1
            if self._count == self._parties:
                try:
                    payload = action() if action is not None else None
                    self._payload = payload
                except BaseException:
                    # a failing action (e.g. a fused collective's compute
                    # step) aborts the world *before* releasing, so the
                    # siblings unwind with SimAbort instead of reading an
                    # unset payload
                    abort.set()
                    raise
                finally:
                    self._count = 0
                    self._generation = gen + 1
                    self._cond.notify_all()
                return payload
            while self._generation == gen and not abort.is_set:
                self._cond.wait(timeout=_SAFETY_TIMEOUT)
            payload = self._payload
        abort.check()
        return payload


class Channel:
    """Event-driven FIFO message channel for one (src, dst, tag) edge.

    Replaces the seed's ``queue.SimpleQueue`` + poll loop: the receiver
    sleeps on the channel's condition variable and is woken by a put or
    by the world aborting.  Only one thread (the destination rank) ever
    receives from a channel, so :meth:`put` notifies a single waiter.
    """

    __slots__ = ("_items", "_cond")

    def __init__(self, abort: AbortFlag):
        self._items: deque = deque()
        self._cond = threading.Condition()
        abort.register(self._cond)

    def put(self, item: Any) -> None:
        with self._cond:
            self._items.append(item)
            self._cond.notify()

    def get_nowait(self) -> Any | None:
        """Pop the head message, or ``None`` if the channel is empty."""
        with self._cond:
            if self._items:
                return self._items.popleft()
            return None

    def get(self, abort: AbortFlag) -> Any:
        """Block (abortably, event-driven) until a message arrives."""
        with self._cond:
            while not self._items and not abort.is_set:
                self._cond.wait(timeout=_SAFETY_TIMEOUT)
            abort.check()
            return self._items.popleft()


class CommContext:
    """Barrier + staging area shared by the members of one communicator.

    Parameters
    ----------
    group:
        Global rank ids of the members, in communicator rank order.
    abort:
        The world's abort flag; barriers subscribe to it so failures
        elsewhere wake and unwind every member instead of deadlocking.
    """

    def __init__(self, group: Sequence[int], abort: AbortFlag):
        self.group: tuple[int, ...] = tuple(group)
        self.size = len(self.group)
        self.abort = abort
        self._barrier = _CondBarrier(self.size, abort)
        #: Deposit slots for the *current* collective generation.  The
        #: last arriver's barrier action swaps in a fresh list (see
        #: :meth:`repro.mpi.comm.Comm.staged`), so readers holding a
        #: reference to the old list need no release barrier before the
        #: next collective reuses the attribute.
        self.stage: list[Any] = [None] * self.size

    def sync(self, action: Callable[[], Any] | None = None) -> Any:
        """Abortable barrier; ``action`` runs once, by the last arriver.

        Returns ``action``'s result on every member of the cycle.
        """
        return self._barrier.wait(self.abort, action)

    def fresh_stage(self) -> list:
        """Swap in (and return) a new stage list for the next generation.

        Called from inside a barrier action, i.e. while every member of
        the current generation is still blocked, so no deposit can race
        with the swap.
        """
        self.stage = [None] * self.size
        return self.stage
