"""Shared state behind one simulated communicator.

A :class:`CommContext` is created once per communicator (world or
split) and shared by its member ranks' :class:`~repro.mpi.comm.Comm`
handles.  It provides abortable barrier synchronisation and a staging
area for collective data movement.

Collectives follow a two-barrier protocol::

    deposit into stage[my_index]
    sync()            # everyone deposited -> safe to read
    read what you need
    sync()            # everyone read -> safe to reuse the stage

which makes consecutive collectives on the same communicator safe
without allocating per-call buffers.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from .errors import SimAbort

#: Seconds between abort-flag checks while blocked (real time, not virtual).
_POLL = 0.05


class AbortFlag:
    """World-wide failure flag checked by every blocking primitive."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    @property
    def is_set(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise SimAbort("world aborted by a failing rank")


class _CondBarrier:
    """Generation-counted barrier that polls an abort flag while waiting.

    Unlike :class:`threading.Barrier`, an aborting rank cannot corrupt
    the barrier for survivors — survivors simply observe the abort flag
    on their next poll and unwind with :class:`SimAbort`.
    """

    def __init__(self, parties: int):
        self._parties = parties
        self._count = 0
        self._generation = 0
        self._cond = threading.Condition()

    def wait(self, abort: AbortFlag) -> None:
        abort.check()
        with self._cond:
            gen = self._generation
            self._count += 1
            if self._count == self._parties:
                self._count = 0
                self._generation += 1
                self._cond.notify_all()
                return
            while self._generation == gen:
                self._cond.wait(timeout=_POLL)
                abort.check()


class CommContext:
    """Barrier + staging area shared by the members of one communicator.

    Parameters
    ----------
    group:
        Global rank ids of the members, in communicator rank order.
    abort:
        The world's abort flag; barriers poll it so failures elsewhere
        unwind every member instead of deadlocking.
    """

    def __init__(self, group: Sequence[int], abort: AbortFlag):
        self.group: tuple[int, ...] = tuple(group)
        self.size = len(self.group)
        self.abort = abort
        self._barrier = _CondBarrier(self.size)
        self.stage: list[Any] = [None] * self.size
        self.scratch: Any = None  # single slot for designated-rank results

    def sync(self) -> None:
        """Abortable barrier across the communicator's members."""
        self._barrier.wait(self.abort)
