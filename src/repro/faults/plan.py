"""Deterministic fault schedules: the compiled form the engine consults.

A :class:`FaultPlan` is a :class:`~repro.faults.spec.FaultSpec` resolved
against a world shape ``(p, seed)``.  Every fault event is a pure
function of ``(seed, structural position)`` — the structural position
being *which* message (source, destination, tag, per-edge sequence
number) or *which* collective (communicator group, per-communicator
collective sequence number, rank) — never of host time or thread
scheduling.  Two runs of the same program under the same plan therefore
observe the identical fault schedule, which is the determinism contract
``sdssort chaos`` report hashes and the resilience tests pin.

Randomness sources, both seeded and counter-based:

* scalar decisions (straggler membership, crash victims, per-message
  drop/delay/duplicate trials, transient collective failures) use a
  SplitMix64 hash chain over the event coordinates — pure integer
  arithmetic, identical on every platform;
* aggregate decisions (how many of a collective's ``p - 1`` per-peer
  messages dropped) use a Philox counter-based generator keyed from the
  same coordinates, so one vectorised binomial draw replaces ``p - 1``
  scalar trials on the per-collective hot path.

The plan prices nothing itself: recovery costs are charged by the
engine hooks through the machine's LogGP cost model, using the
:class:`~repro.faults.spec.RetryPolicy` carried by the spec.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence

import numpy as np

from .spec import CRASH_BOUNDARIES, FaultSpec

__all__ = ["MessageEvent", "CollectivePenalty", "FaultPlan"]

_MASK = (1 << 64) - 1

# Domain separators: every fault family draws from its own hash stream
# so that e.g. enabling delays never perturbs which messages drop.
_DOM_STRAGGLER = 0x51
_DOM_CRASH = 0x52
_DOM_DROP = 0x53
_DOM_DELAY = 0x54
_DOM_DUP = 0x55
_DOM_COLL_DROP = 0x56
_DOM_COLL_FAIL = 0x57


def _mix(*parts: int) -> int:
    """SplitMix64-style avalanche over integer coordinates."""
    h = 0x9E3779B97F4A7C15
    for part in parts:
        h = (h ^ (part & _MASK)) & _MASK
        h = (h * 0xBF58476D1CE4E5B9) & _MASK
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK
        h ^= h >> 31
    return h


def _unit(*parts: int) -> float:
    """Deterministic uniform in [0, 1) from integer coordinates."""
    return _mix(*parts) / 2.0**64


class MessageEvent(NamedTuple):
    """What the transport does to one point-to-point message."""

    drops: int        # failed transmission attempts before delivery
    delay: float      # injected extra latency (seconds)
    duplicate: bool   # a spurious second copy is injected
    lost: bool        # dropped more than max_retries times: unrecoverable


class CollectivePenalty(NamedTuple):
    """Faults one rank observed in one staged collective."""

    detect_seconds: float      # timeout latency (retry policy)
    resend_messages: int       # retransmissions to price via p2p_time
    resync_rounds: int         # failed whole-collective attempts
    dropped: int               # per-peer messages dropped (this rank)
    lost: bool                 # a message exhausted max_retries


class FaultPlan:
    """One compiled, fully deterministic fault schedule.

    Construct via :meth:`repro.faults.spec.FaultSpec.compile`.  The
    engine treats the plan as read-only; all methods are pure.
    """

    def __init__(self, spec: FaultSpec, p: int, seed: int):
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.spec = spec
        self.p = p
        self.seed = int(seed)
        self._group_hashes: dict[tuple[int, ...], int] = {}

        # ---- resolve stragglers: seed-drawn ranks become concrete ----
        slow = [1.0] * p
        order = sorted(range(p), key=lambda r: _mix(self.seed,
                                                    _DOM_STRAGGLER, r))
        drawn = 0
        for s in spec.stragglers:
            if s.rank >= 0:
                if s.rank < p:
                    slow[s.rank] = max(slow[s.rank], s.slowdown)
            else:
                for _ in range(min(s.count, p)):
                    slow[order[drawn % p]] = max(slow[order[drawn % p]],
                                                 s.slowdown)
                    drawn += 1
        self._slowdown = slow
        self.has_stragglers = any(f != 1.0 for f in slow)

        # ---- resolve crash victims ----
        crashes: dict[int, str] = {}
        corder = sorted(range(p), key=lambda r: _mix(self.seed,
                                                     _DOM_CRASH, r))
        cdrawn = 0
        for c in spec.crashes:
            if c.rank >= 0:
                victim = c.rank
            else:
                victim = corder[cdrawn % p]
                cdrawn += 1
            if victim < p and victim not in crashes:
                crashes[victim] = c.phase
        self._crashes = crashes
        self.has_crashes = bool(crashes)

        m = spec.messages
        self.has_message_faults = m.any
        self.affects_collectives = (m.drop_rate > 0
                                    or spec.collectives.transient_rate > 0)
        self.active = (self.has_stragglers or self.has_crashes
                       or self.has_message_faults or self.affects_collectives)

    # ------------------------------------------------------------------
    # per-family queries (all pure)
    # ------------------------------------------------------------------
    def slowdown(self, grank: int) -> float:
        """Compute-charge multiplier of one global rank (>= 1.0)."""
        return self._slowdown[grank]

    def crash_at(self, grank: int, boundary: str) -> bool:
        """Does ``grank`` die when it reaches ``boundary``?"""
        if boundary not in CRASH_BOUNDARIES:
            raise ValueError(f"unknown crash boundary {boundary!r}; "
                             f"options: {', '.join(CRASH_BOUNDARIES)}")
        return self._crashes.get(grank) == boundary

    @property
    def crash_schedule(self) -> dict[int, str]:
        """Resolved ``{global rank: boundary}`` crash map (read-only use)."""
        return dict(self._crashes)

    def p2p_event(self, src: int, dst: int, tag: int,
                  seq: int) -> MessageEvent:
        """Transport faults for the ``seq``-th message on one edge.

        ``seq`` counts messages per ``(src, dst, tag)`` edge; sender
        and receiver maintain the counter independently and agree
        because channels are FIFO.
        """
        m = self.spec.messages
        r = self.spec.retry
        drops = 0
        lost = False
        if m.drop_rate > 0:
            while (_unit(self.seed, _DOM_DROP, src, dst, tag, seq, drops)
                   < m.drop_rate):
                drops += 1
                if drops > r.max_retries:
                    lost = True
                    break
        delay = 0.0
        if (m.delay_rate > 0
                and _unit(self.seed, _DOM_DELAY, src, dst, tag, seq)
                < m.delay_rate):
            delay = m.delay
        duplicate = (m.duplicate_rate > 0
                     and _unit(self.seed, _DOM_DUP, src, dst, tag, seq)
                     < m.duplicate_rate)
        return MessageEvent(drops, delay, duplicate, lost)

    def _group_hash(self, group: Sequence[int]) -> int:
        key = tuple(group)
        h = self._group_hashes.get(key)
        if h is None:
            h = _mix(len(key), *key)
            self._group_hashes[key] = h
        return h

    def collective_penalty(self, group: Sequence[int], seq: int, rank: int,
                           ) -> CollectivePenalty | None:
        """Faults ``rank`` observes in the ``seq``-th collective of ``group``.

        Two components:

        * **per-peer message drops** — each of the collective's
          ``size - 1`` messages independently drops with
          ``messages.drop_rate`` per attempt.  Retransmission rounds
          run in parallel (one timeout per round, escalating with the
          policy's backoff), while the resends themselves serialise on
          the rank's CPU — the caller prices them via ``p2p_time``.
          Drawn with a Philox generator keyed on ``(seed, group, seq,
          rank)``: one vectorised binomial chain instead of ``size - 1``
          scalar trials.
        * **transient whole-collective failures** — ``k`` consecutive
          failed attempts with ``collectives.transient_rate`` each;
          identical for every member (keyed without ``rank``), so the
          re-synchronisation debt keeps the group's clocks aligned.

        Returns ``None`` when this collective observes no fault (the
        common case, kept allocation-free).
        """
        size = len(group)
        if size <= 1:
            return None
        m = self.spec.messages
        r = self.spec.retry
        detect = 0.0
        resend = 0
        dropped = 0
        lost = False
        if m.drop_rate > 0:
            gh = self._group_hash(group)
            gen = np.random.Generator(np.random.Philox(
                key=_mix(self.seed, _DOM_COLL_DROP, gh, seq, rank)))
            pending = size - 1
            attempt = 0
            while pending:
                fell = int(gen.binomial(pending, m.drop_rate))
                if fell == 0:
                    break
                if attempt >= r.max_retries:
                    lost = True
                    break
                detect += r.timeout * r.backoff ** attempt
                dropped += fell
                resend += fell
                pending = fell
                attempt += 1
        resync = 0
        rate = self.spec.collectives.transient_rate
        if rate > 0:
            gh = self._group_hash(group)
            while (resync < r.max_retries
                   and _unit(self.seed, _DOM_COLL_FAIL, gh, seq, resync)
                   < rate):
                detect += r.timeout * r.backoff ** resync
                resync += 1
        if not (detect or resend or resync or lost):
            return None
        return CollectivePenalty(detect, resend, resync, dropped, lost)

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Resolved schedule summary (for reports; JSON-serialisable)."""
        return {
            "p": self.p,
            "seed": self.seed,
            "stragglers": {str(r): f for r, f in enumerate(self._slowdown)
                           if f != 1.0},
            "crashes": {str(r): ph for r, ph in sorted(self._crashes.items())},
            "message_faults": {
                "drop_rate": self.spec.messages.drop_rate,
                "delay_rate": self.spec.messages.delay_rate,
                "duplicate_rate": self.spec.messages.duplicate_rate,
            },
            "collective_transient_rate":
                self.spec.collectives.transient_rate,
            "retry": {"timeout": self.spec.retry.timeout,
                      "backoff": self.spec.retry.backoff,
                      "max_retries": self.spec.retry.max_retries},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(p={self.p}, seed={self.seed}, "
                f"stragglers={sum(1 for f in self._slowdown if f != 1.0)}, "
                f"crashes={self._crashes}, "
                f"msg={self.has_message_faults}, "
                f"coll={self.affects_collectives})")
