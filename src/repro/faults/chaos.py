"""The chaos harness: seeded fault matrices over the sort runner.

``run_chaos`` drives the ``sdssort chaos`` CLI: for every (fault
preset, algorithm, seed) cell it runs the sort under the compiled
fault plan and compares against the fault-free baseline of the same
(algorithm, data seed), producing a :class:`~repro.faults.report.ChaosReport`
whose hash is deterministic — same matrix, same report, bit for bit.

This module imports :mod:`repro.runner` and is therefore *not*
re-exported from ``repro.faults`` (the runner imports the spec/plan
side of this package; keeping chaos out of ``__init__`` avoids the
cycle).  Import it directly: ``from repro.faults.chaos import run_chaos``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..machine import EDISON, MachineSpec
from ..runner import run_sort
from ..workloads import by_name
from .report import ChaosReport, RunRecord
from .spec import (
    CollectiveFaults,
    CrashFault,
    FaultSpec,
    MessageFaults,
    StragglerFault,
)

__all__ = ["PRESETS", "run_chaos"]

#: Named fault campaigns of the chaos CLI.  Rates are chosen so every
#: preset is survivable by design: drops stay far below the retry
#: budget, crash presets kill exactly one rank.
PRESETS: dict[str, FaultSpec] = {
    "drop": FaultSpec(messages=MessageFaults(drop_rate=0.05)),
    "delay": FaultSpec(messages=MessageFaults(delay_rate=0.2, delay=1e-3)),
    "duplicate": FaultSpec(messages=MessageFaults(duplicate_rate=0.1)),
    "straggler": FaultSpec(stragglers=(StragglerFault(count=2,
                                                      slowdown=4.0),)),
    "collective": FaultSpec(collectives=CollectiveFaults(transient_rate=0.1)),
    "crash-pivot": FaultSpec(crashes=(CrashFault(phase="pivot_select"),)),
    "crash-exchange": FaultSpec(crashes=(CrashFault(phase="exchange"),)),
    "mixed": FaultSpec(
        stragglers=(StragglerFault(count=1, slowdown=2.0),),
        messages=MessageFaults(drop_rate=0.02, delay_rate=0.1),
        collectives=CollectiveFaults(transient_rate=0.05),
    ),
}


def resolve_specs(names: Iterable[str] | None,
                  extra: Mapping[str, FaultSpec] | None = None
                  ) -> dict[str, FaultSpec]:
    """Map preset names to specs; ``None`` selects every preset."""
    table = dict(PRESETS)
    if extra:
        table.update(extra)
    if names is None:
        return dict(table)
    out: dict[str, FaultSpec] = {}
    for name in names:
        if name not in table:
            raise KeyError(f"unknown chaos preset {name!r}; "
                           f"options: {', '.join(sorted(table))}")
        out[name] = table[name]
    return out


def run_chaos(*, p: int, n_per_rank: int = 256,
              seeds: Iterable[int] = range(3),
              specs: Iterable[str] | None = None,
              algorithms: Iterable[str] = ("sds", "sds-stable"),
              workload: str = "uniform",
              machine: MachineSpec = EDISON,
              mem_factor: float | None = None,
              extra_specs: Mapping[str, FaultSpec] | None = None,
              backend: str = "thread", procs: int | None = None,
              ) -> ChaosReport:
    """Run a seeded fault matrix and aggregate the resilience report.

    Every cell runs ``run_sort`` with the preset compiled against
    ``(p, seed)``; the seed doubles as data seed and fault seed, so one
    integer pins the entire cell.  Baselines (fault-free runs) are
    computed once per (algorithm, seed) and shared across presets.
    ``mem_factor=None`` disables the OOM model — chaos campaigns probe
    fault tolerance, not capacity.

    ``backend``/``procs`` select the engine backend per cell; the
    report hash is backend-invariant (the determinism contract the
    cross-backend tests pin down).
    """
    seeds = list(seeds)
    chosen = resolve_specs(specs, extra_specs)
    wl = by_name(workload)
    report = ChaosReport(p=p, n_per_rank=n_per_rank, workload=workload,
                         seeds=seeds)

    baselines: dict[tuple[str, int], float] = {}
    for algorithm in algorithms:
        for seed in seeds:
            base = run_sort(algorithm, wl, n_per_rank=n_per_rank, p=p,
                            machine=machine, seed=seed,
                            mem_factor=mem_factor,
                            backend=backend, procs=procs)
            baselines[(algorithm, seed)] = base.elapsed

    for spec_name, spec in chosen.items():
        for algorithm in algorithms:
            for seed in seeds:
                try:
                    res = run_sort(algorithm, wl, n_per_rank=n_per_rank,
                                   p=p, machine=machine, seed=seed,
                                   mem_factor=mem_factor,
                                   faults=spec, fault_seed=seed,
                                   backend=backend, procs=procs)
                    ok = res.ok
                    failure = res.failure
                    elapsed = res.elapsed
                    counters = dict(res.extras.get("faults", {}))
                    crashed = list(res.extras.get("crashed_ranks", []))
                    decisions = res.extras.get("decisions") or []
                    recoveries = sum(1 for d in decisions
                                     if d.get("decision") == "fault_recovery")
                except Exception as exc:  # validation/engine failure
                    ok, failure, elapsed = False, repr(exc), 0.0
                    counters, crashed, recoveries = {}, [], 0
                report.add(RunRecord(
                    spec_name=spec_name, algorithm=algorithm,
                    workload=workload, p=p, seed=seed,
                    recovered=ok, elapsed=elapsed,
                    baseline=baselines[(algorithm, seed)],
                    fault_counters=counters, crashed_ranks=crashed,
                    recovery_decisions=recoveries, failure=failure))
    return report


def spec_from_config(config: Mapping[str, Any] | str) -> FaultSpec:
    """Build a spec from a preset name or a ``FaultSpec.from_dict`` dict."""
    if isinstance(config, str):
        if config not in PRESETS:
            raise KeyError(f"unknown chaos preset {config!r}; "
                           f"options: {', '.join(sorted(PRESETS))}")
        return PRESETS[config]
    return FaultSpec.from_dict(config)
