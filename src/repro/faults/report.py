"""Resilience reporting: what a chaos campaign did, deterministically.

One :class:`RunRecord` captures a single faulted run against its
fault-free baseline; a :class:`ChaosReport` aggregates a whole
``sdssort chaos`` matrix.  Every quantity in a report is *virtual*
(simulated seconds, fault counters, crash sets) — never host walltime —
so the canonical-JSON sha256 of a report is reproducible across hosts
and runs, which is exactly what the CI chaos job compares.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunRecord", "ChaosReport", "canonical_hash", "render_report"]


def canonical_hash(payload: Any) -> str:
    """sha256 over canonical (sorted-key, fixed-separator) JSON."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class RunRecord:
    """One faulted run of the chaos matrix, vs its fault-free baseline."""

    spec_name: str
    algorithm: str
    workload: str
    p: int
    seed: int
    recovered: bool                 # run completed with validated output
    elapsed: float                  # simulated seconds under faults
    baseline: float                 # simulated seconds fault-free
    fault_counters: dict[str, float] = field(default_factory=dict)
    crashed_ranks: list[int] = field(default_factory=list)
    recovery_decisions: int = 0     # fault_recovery entries in the trace
    failure: str | None = None

    @property
    def overhead(self) -> float:
        """Virtual-walltime overhead ratio vs fault-free (0.0 = none)."""
        if not self.recovered or self.baseline <= 0:
            return float("inf") if not self.recovered else 0.0
        return self.elapsed / self.baseline - 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "algorithm": self.algorithm,
            "workload": self.workload,
            "p": self.p,
            "seed": self.seed,
            "recovered": self.recovered,
            "elapsed": self.elapsed,
            "baseline": self.baseline,
            "overhead": None if not self.recovered else self.overhead,
            "fault_counters": dict(sorted(self.fault_counters.items())),
            "crashed_ranks": list(self.crashed_ranks),
            "recovery_decisions": self.recovery_decisions,
            "failure": self.failure,
        }


@dataclass
class ChaosReport:
    """Aggregated outcome of one seeded chaos campaign."""

    p: int
    n_per_rank: int
    workload: str
    seeds: list[int]
    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> RunRecord:
        self.records.append(record)
        return record

    # ------------------------------------------------------------ summary
    def by_spec(self) -> dict[str, list[RunRecord]]:
        groups: dict[str, list[RunRecord]] = {}
        for r in self.records:
            groups.setdefault(r.spec_name, []).append(r)
        return groups

    def summary(self) -> dict[str, Any]:
        per_spec: dict[str, Any] = {}
        for name, recs in self.by_spec().items():
            ok = [r for r in recs if r.recovered]
            overheads = [r.overhead for r in ok if r.baseline > 0]
            per_spec[name] = {
                "runs": len(recs),
                "recovered": len(ok),
                "recovery_rate": len(ok) / len(recs) if recs else 0.0,
                "faults_injected": sum(
                    v for r in recs for k, v in r.fault_counters.items()
                    if k.startswith("faults.")),
                "retry_time": sum(
                    r.fault_counters.get("retry.time", 0.0) for r in recs),
                "crashes": sum(len(r.crashed_ranks) for r in recs),
                "max_overhead": max(overheads) if overheads else 0.0,
                "mean_overhead": (sum(overheads) / len(overheads)
                                  if overheads else 0.0),
            }
        total = len(self.records)
        recovered = sum(1 for r in self.records if r.recovered)
        return {
            "p": self.p,
            "n_per_rank": self.n_per_rank,
            "workload": self.workload,
            "seeds": list(self.seeds),
            "runs": total,
            "recovered": recovered,
            "recovery_rate": recovered / total if total else 0.0,
            "specs": dict(sorted(per_spec.items())),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "summary": self.summary(),
            "records": [r.as_dict() for r in self.records],
        }

    @property
    def report_hash(self) -> str:
        """Deterministic digest of the full report (virtual-only data)."""
        return canonical_hash(self.as_dict())


def render_report(report: ChaosReport) -> list[str]:
    """Terminal rendering of a chaos report (the CLI's output)."""
    s = report.summary()
    lines = [
        f"chaos campaign: p={s['p']} n/rank={s['n_per_rank']} "
        f"workload={s['workload']} seeds={s['seeds']}",
        f"runs: {s['runs']}  recovered: {s['recovered']}  "
        f"recovery rate: {s['recovery_rate']:.1%}",
        "",
        f"{'spec':<16} {'runs':>5} {'recov':>6} {'faults':>8} "
        f"{'crashes':>8} {'mean ovh':>9} {'max ovh':>9}",
    ]
    for name, st in s["specs"].items():
        lines.append(
            f"{name:<16} {st['runs']:>5} {st['recovered']:>6} "
            f"{st['faults_injected']:>8.0f} {st['crashes']:>8} "
            f"{st['mean_overhead']:>8.1%} {st['max_overhead']:>8.1%}")
    failures = [r for r in report.records if not r.recovered]
    if failures:
        lines.append("")
        lines.append("failed runs:")
        for r in failures:
            lines.append(f"  {r.spec_name}/{r.algorithm} seed={r.seed}: "
                         f"{r.failure}")
    lines.append("")
    lines.append(f"report hash: {report.report_hash}")
    return lines
