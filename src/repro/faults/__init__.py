"""Deterministic fault injection & resilience for the simulated cluster.

Declare a campaign as a :class:`FaultSpec`, compile it against a world
shape into a :class:`FaultPlan`, and hand the plan to the engine
(``run_spmd(..., faults=plan)`` or ``run_sort(..., faults=spec)``):

* the schedule is a pure function of ``(spec, p, seed)`` — same triple,
  same faults, same sorted output, same report;
* a plan of ``None`` (or an empty spec) leaves the engine bit-for-bit
  identical to a fault-free run;
* recovery (retries, degraded completion) is priced through the LogGP
  cost model, so resilience shows up in simulated walltime.

The chaos harness (:mod:`repro.faults.chaos`) imports the runner and is
deliberately not re-exported here — import it directly to avoid the
package cycle.  See docs/faults.md for the taxonomy and contracts.
"""

from .plan import CollectivePenalty, FaultPlan, MessageEvent
from .report import ChaosReport, RunRecord, canonical_hash, render_report
from .spec import (
    CRASH_BOUNDARIES,
    CollectiveFaults,
    CrashFault,
    FaultSpec,
    MessageFaults,
    RetryPolicy,
    StragglerFault,
)

__all__ = [
    "CRASH_BOUNDARIES",
    "StragglerFault",
    "MessageFaults",
    "CollectiveFaults",
    "CrashFault",
    "RetryPolicy",
    "FaultSpec",
    "FaultPlan",
    "MessageEvent",
    "CollectivePenalty",
    "ChaosReport",
    "RunRecord",
    "canonical_hash",
    "render_report",
]
