"""Fault taxonomy: what can go wrong, declared as data.

A :class:`FaultSpec` is the user-facing, machine-independent description
of a fault campaign — *which* failure modes are enabled and at what
intensity.  It deliberately contains no randomness and no resolved
schedule: compiling it against a world shape and a seed
(:meth:`FaultSpec.compile`) produces the fully deterministic
:class:`~repro.faults.plan.FaultPlan` the engine hooks consult.

Four fault families (see docs/faults.md for the full taxonomy):

* **stragglers** — named or seed-drawn ranks whose *compute* charges
  are scaled by a slowdown factor (the virtual-clock analogue of a
  thermally throttled or oversubscribed node);
* **messages** — per-message drop / delay / duplication, applied to
  point-to-point traffic and (drops) to the per-peer message trials of
  every staged collective;
* **collectives** — transient whole-collective failures (a failed
  allreduce/alltoallv attempt that must be retried);
* **crashes** — a rank dies at a named phase boundary of the sort
  pipeline; surviving ranks complete degraded on the reduced
  communicator.

The :class:`RetryPolicy` prices recovery: every retransmission or
retried collective attempt charges its timeout (with exponential
backoff) plus the LogGP resend cost to the affected rank's virtual
clock, so resilience shows up in simulated walltime, not just counters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import FaultPlan

__all__ = [
    "CRASH_BOUNDARIES",
    "StragglerFault",
    "MessageFaults",
    "CollectiveFaults",
    "CrashFault",
    "RetryPolicy",
    "FaultSpec",
]

#: Pipeline boundaries at which a :class:`CrashFault` may fire.  The
#: names match the phase the crashing rank would have entered next:
#: ``"pivot_select"`` kills it right after local sort / node merge;
#: ``"exchange"`` kills it after partitioning, forcing survivors to
#: re-run pivot selection and partitioning over the reduced world.
CRASH_BOUNDARIES = ("pivot_select", "exchange")


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], "
                         f"got {value!r}")


@dataclass(frozen=True)
class StragglerFault:
    """Slow ranks: compute charges scaled by ``slowdown``.

    ``rank >= 0`` names the straggler explicitly; ``rank == -1`` lets
    the plan draw ``count`` distinct ranks from the seed.
    """

    rank: int = -1
    count: int = 1
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.rank < -1:
            raise ValueError(f"rank must be >= 0 or -1 (seed-drawn), "
                             f"got {self.rank}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")


@dataclass(frozen=True)
class MessageFaults:
    """Per-message transport faults.

    ``drop_rate`` applies per transmission attempt — a dropped message
    is retransmitted by the reliable layer until delivered or
    :attr:`RetryPolicy.max_retries` is exhausted.  ``delay`` seconds of
    extra latency are injected with probability ``delay_rate``;
    duplicates cost the sender an extra injection and the receiver a
    discard, with probability ``duplicate_rate``.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 1e-3
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("delay_rate", self.delay_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    @property
    def any(self) -> bool:
        return (self.drop_rate > 0 or self.delay_rate > 0
                or self.duplicate_rate > 0)


@dataclass(frozen=True)
class CollectiveFaults:
    """Transient whole-collective failures.

    Each staged collective independently fails ``k`` consecutive
    attempts with per-attempt probability ``transient_rate``; every
    participant charges the retry timeouts plus a re-synchronisation
    barrier per failed attempt.
    """

    transient_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("transient_rate", self.transient_rate)


@dataclass(frozen=True)
class CrashFault:
    """A rank dies at a named pipeline boundary.

    ``rank >= 0`` names the victim; ``rank == -1`` draws it from the
    seed.  ``phase`` must be one of :data:`CRASH_BOUNDARIES`.
    """

    rank: int = -1
    phase: str = "exchange"

    def __post_init__(self) -> None:
        if self.rank < -1:
            raise ValueError(f"rank must be >= 0 or -1 (seed-drawn), "
                             f"got {self.rank}")
        if self.phase not in CRASH_BOUNDARIES:
            raise ValueError(f"unknown crash phase {self.phase!r}; "
                             f"options: {', '.join(CRASH_BOUNDARIES)}")


@dataclass(frozen=True)
class RetryPolicy:
    """How recovery is priced in virtual time.

    A failed attempt ``i`` (0-based) charges ``timeout * backoff**i``
    of detection latency before the retransmission; the resend itself
    is charged through the LogGP cost model (``p2p_time`` for messages,
    ``barrier_time`` for collective re-synchronisation).  Delivery
    failing ``max_retries + 1`` consecutive times is unrecoverable and
    surfaces as :class:`~repro.mpi.errors.MessageLostError`.
    """

    timeout: float = 1e-3
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")

    def detection_time(self, failed_attempts: int) -> float:
        """Total timeout latency of ``failed_attempts`` consecutive drops."""
        return sum(self.timeout * self.backoff ** i
                   for i in range(failed_attempts))


@dataclass(frozen=True)
class FaultSpec:
    """One complete, seedless fault campaign description.

    Compile against a world shape to obtain the deterministic schedule::

        plan = FaultSpec(messages=MessageFaults(drop_rate=0.1)).compile(
            p=256, seed=0)

    The same ``(spec, p, seed)`` triple always compiles to the same
    :class:`~repro.faults.plan.FaultPlan` — the determinism contract
    chaos runs, CI hashes and the golden suite rely on.
    """

    stragglers: tuple[StragglerFault, ...] = ()
    messages: MessageFaults = field(default_factory=MessageFaults)
    collectives: CollectiveFaults = field(default_factory=CollectiveFaults)
    crashes: tuple[CrashFault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # tolerate lists in hand-written specs
        if not isinstance(self.stragglers, tuple):
            object.__setattr__(self, "stragglers", tuple(self.stragglers))
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def empty(self) -> bool:
        """True when no fault family is enabled."""
        return (not self.stragglers and not self.crashes
                and not self.messages.any
                and self.collectives.transient_rate == 0)

    def compile(self, p: int, seed: int) -> "FaultPlan":
        """Resolve this spec into a deterministic per-world schedule."""
        from .plan import FaultPlan
        return FaultPlan(self, p, seed)

    # ------------------------------------------------------------ (de)ser
    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Build a spec from a plain dict (CLI / JSON configs)."""
        d = dict(data)
        unknown = set(d) - {"stragglers", "messages", "collectives",
                            "crashes", "retry"}
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(
            stragglers=tuple(StragglerFault(**s)
                             for s in d.get("stragglers", ())),
            messages=MessageFaults(**d.get("messages", {})),
            collectives=CollectiveFaults(**d.get("collectives", {})),
            crashes=tuple(CrashFault(**c) for c in d.get("crashes", ())),
            retry=RetryPolicy(**d.get("retry", {})),
        )

    def with_overrides(self, **kwargs: Any) -> "FaultSpec":
        return replace(self, **kwargs)
