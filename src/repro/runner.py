"""One-call experiment runner shared by tests, benches, examples and CLI.

Wraps the SPMD engine: generates a workload's shards, runs the chosen
algorithm on ``p`` simulated ranks, validates the output, and reports
the quantities the paper's tables and figures are made of (virtual
time, phase breakdown, per-rank loads, RDFA, throughput, OOM status).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from .baselines import (
    HykParams,
    bitonic_sort_batch,
    bitonic_sort_batch_world,
    hyksort,
    hyksort_secondary_key,
    hyksort_secondary_key_world,
    hyksort_world,
    psrs_sort,
    psrs_sort_world,
    radix_sort,
    radix_sort_world,
)
from .core import SdsParams, sds_sort, sds_sort_world
from .machine import EDISON, MachineSpec
from .metrics import check_sorted, rdfa, tb_per_min
from .mpi import ColumnarWorld, Comm, run_spmd
from .mpi.errors import RunCancelled
from .records import RecordBatch, tag_provenance
from .workloads import Workload

#: Edison headroom: 64 GB / 24 ranks = 2.67 GB per rank against the
#: paper's 400 MB input shard — a 6.7x memory-capacity-to-input ratio.
#: Functional runs scale the capacity with the same ratio so OOM
#: behaviour matches the testbed's.
MEM_FACTOR = 6.7


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered distributed-sort algorithm.

    ``ctor`` is the collective entry point ``(comm, batch, ...)``.  When
    ``params_type`` is set, user options (merged over ``defaults``) are
    packed into one ``params_type(**opts)`` value and passed as the
    third positional argument; otherwise they are passed as keyword
    arguments.  ``stable`` declares that equal-key output order is
    guaranteed stable — the runner validates accordingly and benches /
    the CLI no longer need a separate stable-algorithm set.
    ``world_ctor`` is the algorithm's world-form entry point
    ``(world, comms, batches, ...)`` — the single implementation behind
    ``ctor`` that the columnar flat engine drives whole-world; an
    algorithm without one cannot run on ``backend="flat"``.
    """

    name: str
    ctor: Callable[..., Any]
    params_type: type | None = None
    defaults: dict[str, Any] = field(default_factory=dict)
    stable: bool = False
    summary: str = ""
    world_ctor: Callable[..., Any] | None = None

    def invoke(self, comm: Comm, batch: RecordBatch,
               opts: dict[str, Any] | None = None) -> Any:
        """Run the algorithm collectively with ``opts`` over defaults."""
        merged = {**self.defaults, **(opts or {})}
        if self.params_type is not None:
            return self.ctor(comm, batch, self.params_type(**merged))
        return self.ctor(comm, batch, **merged)

    def invoke_world(self, world: Any, comms: list[Comm], batches: list,
                     opts: dict[str, Any] | None = None) -> list:
        """Run the algorithm's world form over every rank of ``world``."""
        if self.world_ctor is None:
            raise TypeError(f"algorithm {self.name!r} has no world-form "
                            "entry point")
        merged = {**self.defaults, **(opts or {})}
        if self.params_type is not None:
            return self.world_ctor(world, comms, batches,
                                   self.params_type(**merged))
        return self.world_ctor(world, comms, batches, **merged)


ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            "sds", sds_sort, params_type=SdsParams,
            world_ctor=sds_sort_world,
            summary="SDS-Sort (the paper): skew-aware adaptive samplesort"),
        AlgorithmSpec(
            "sds-stable", sds_sort, params_type=SdsParams,
            defaults={"stable": True}, stable=True,
            world_ctor=sds_sort_world,
            summary="SDS-Sort with the stable partition/merge pipeline"),
        AlgorithmSpec(
            "psrs", psrs_sort, world_ctor=psrs_sort_world,
            summary="classic PSRS: regular sampling, no skew handling"),
        AlgorithmSpec(
            "hyksort", hyksort, params_type=HykParams,
            world_ctor=hyksort_world,
            summary="HykSort: k-way hypercube samplesort (comparator)"),
        AlgorithmSpec(
            "hyksort-sk", hyksort_secondary_key, params_type=HykParams,
            stable=True, world_ctor=hyksort_secondary_key_world,
            summary="HykSort on (key, provenance): stability workaround"),
        AlgorithmSpec(
            "bitonic", bitonic_sort_batch, world_ctor=bitonic_sort_batch_world,
            summary="full bitonic sort network (small-p baseline)"),
        AlgorithmSpec(
            "radix", radix_sort, world_ctor=radix_sort_world,
            summary="distributed LSD radix sort (integer keys)"),
    )
}


@dataclass
class RunResult:
    """Everything a bench needs from one distributed-sort run."""

    algorithm: str
    workload: str
    p: int
    n_per_rank: int
    record_bytes: int
    ok: bool
    oom: bool
    elapsed: float                       # simulated seconds (makespan)
    loads: list[int] = field(default_factory=list)
    phase_times: dict[str, float] = field(default_factory=dict)
    failure: str | None = None
    outputs: list[RecordBatch] | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def rdfa(self) -> float:
        """max/avg load; infinity on failed runs (the paper's convention)."""
        if not self.ok:
            return math.inf
        if not self.loads:  # hybrid points carry count-space rdfa instead
            return float(self.extras.get("rdfa", math.nan))
        return rdfa(self.loads)

    @property
    def total_bytes(self) -> int:
        return self.n_per_rank * self.p * self.record_bytes

    @property
    def throughput_tb_min(self) -> float:
        """Simulated sorting throughput in TB/min (0 for failed runs)."""
        if not self.ok or self.elapsed <= 0:
            return 0.0
        return tb_per_min(self.total_bytes, self.elapsed)


#: Counter prefixes aggregated into ``RunResult.extras["faults"]``.
_FAULT_COUNTER_PREFIXES = ("faults.", "retry.")

#: Every backend name :func:`run_sort` accepts.
BACKENDS = ("thread", "proc", "hybrid", "flat", "auto")


def resolve_backend(backend: str, algorithm: str,
                    algo_opts: dict[str, Any] | None = None
                    ) -> tuple[str, str]:
    """Resolve ``backend`` (possibly ``"auto"``) to a concrete engine.

    Returns ``(resolved, reason)``.  ``"auto"`` picks the columnar flat
    engine whenever the algorithm has a world-form entry point (every
    registered algorithm does — the flat engine drives the same
    implementation the rank threads run), and the thread engine
    otherwise.  Unknown names raise a ``ValueError`` listing the
    choices.
    """
    if backend != "auto":
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; options: "
                + ", ".join(repr(b) for b in BACKENDS))
        return backend, "explicitly requested"
    spec = ALGORITHMS.get(algorithm)
    if spec is not None and spec.world_ctor is not None:
        return "flat", ("world-form implementation drives the whole-world "
                        "batched path: columnar flat engine")
    return "thread", (f"algorithm {algorithm!r} has no world-form entry "
                      "point: thread engine")


def eligible_backends(algorithm: str) -> list[str]:
    """Concrete engines that can run ``algorithm`` (``auto`` excluded).

    ``thread`` and ``proc`` accept any per-rank callable; ``flat``
    needs the algorithm's world-form entry point; ``hybrid`` needs an
    analytic count-space load model in :mod:`repro.simfast`.
    """
    out = ["thread", "proc"]
    spec = ALGORITHMS.get(algorithm)
    if spec is not None and spec.world_ctor is not None:
        out.append("flat")
    from .simfast.scaling import _LOAD_METHODS
    if algorithm in _LOAD_METHODS:
        out.append("hybrid")
    return out


@dataclass(frozen=True)
class _SortProgram:
    """The per-rank program of :func:`run_sort`, as a picklable value.

    The proc backend ships the rank program to worker processes by
    pickle; a closure over ``run_sort``'s locals cannot travel, so the
    captured state lives in dataclass fields and the algorithm is
    re-resolved from :data:`ALGORITHMS` by name on the far side.
    """

    algorithm: str
    workload: Workload
    n_per_rank: int
    seed: int
    opts: dict[str, Any]

    def __call__(self, comm: Comm):
        shard = self.workload.shard(self.n_per_rank, comm.size, comm.rank,
                                    self.seed)
        shard = tag_provenance(shard, comm.rank)
        out = ALGORITHMS[self.algorithm].invoke(comm, shard, self.opts)
        return shard, out

    def flat_run(self, comms: list[Comm]):
        """Whole-world entry point for ``backend="flat"``.

        Drives the algorithm's world-form implementation over a
        columnar view of the world — the same code the rank threads
        execute, minus the threads.
        """
        spec = ALGORITHMS[self.algorithm]
        if spec.world_ctor is None:
            raise TypeError(
                "backend='flat' needs an algorithm with a world-form entry "
                f"point; {self.algorithm!r} has none (use backend='thread' "
                "or 'proc', or 'auto' to pick automatically)")
        world = ColumnarWorld(comms[0]._world)
        shards = []
        for c in comms:
            shard = self.workload.shard(self.n_per_rank, c.size, c.rank,
                                        self.seed)
            shards.append(tag_provenance(shard, c.rank))
        outcomes = spec.invoke_world(world, comms, shards, self.opts)
        results = [None if o is None else (shards[i], o)
                   for i, o in enumerate(outcomes)]
        return results, world.failures


def run_sort(algorithm: str, workload: Workload, *, n_per_rank: int, p: int,
             machine: MachineSpec = EDISON, seed: int = 0,
             mem_factor: float | None = MEM_FACTOR,
             validate: bool = True, keep_outputs: bool = False,
             algo_opts: dict[str, Any] | None = None,
             faults: Any = None, fault_seed: int = 0,
             trace: bool = False,
             backend: str = "thread", procs: int | None = None,
             pool: Any = None, cancel: Any = None,
             metrics: Any = None) -> RunResult:
    """Run one distributed sort end to end on the simulated machine.

    Parameters
    ----------
    algorithm: one of :data:`ALGORITHMS`.
    workload: dataset family; each rank generates its own shard.
    n_per_rank, p: weak-scaling shape (records per rank, ranks).
    mem_factor: per-rank memory capacity as a multiple of the input
        shard's bytes (default: Edison's 6.7x).  ``None`` disables OOM.
    validate: check sortedness/stability/multiset on success.
    keep_outputs: retain per-rank output batches on the result.
    faults: optional :class:`~repro.faults.spec.FaultSpec`; compiled
        against ``(p, fault_seed)`` into the deterministic plan the
        engine injects.  ``None`` (or an empty spec) runs fault-free.
    fault_seed: seed for the fault schedule, independent of the data
        ``seed`` so the same dataset can face different fault draws.
    trace: collect a virtual-time trace of the run; the resulting
        :class:`~repro.obs.report.TraceReport` lands in
        ``extras["trace"]``.  Tracing is purely observational — the
        simulated clocks are identical with it on or off.
    backend: ``"thread"`` (default), ``"proc"`` and ``"flat"`` run the
        functional engine — bit-for-bit identical results, with ranks
        hosted in this process, sharded over worker processes, or
        executed as whole-world columnar phases with zero rank threads
        respectively (every registered algorithm has the world-form
        entry point ``"flat"`` drives).  ``"auto"`` resolves to
        ``"flat"`` when the algorithm supports it and ``"thread"``
        otherwise; the resolution and the per-algorithm eligibility
        list are recorded in ``extras["backend"]``.  ``"hybrid"`` computes the point
        analytically at any ``p`` (up to 128Ki+) while functionally
        executing a deterministic rank sample for validation; see
        :func:`repro.simfast.hybrid_scaling_point`.
    procs: worker-process count for ``backend="proc"``.
    pool: optional warm pool to host the run — an
        :class:`~repro.mpi.engine.SpmdPool` (thread backend) or
        :class:`~repro.mpi.procpool.ProcPool` (proc backend).  The
        sort-as-a-service scheduler leases pools from its cache and
        injects them here so concurrent jobs reuse rank threads /
        worker interpreters across requests instead of cold-starting.
    cancel: optional :class:`threading.Event`; firing it mid-run aborts
        the world with a ``RunCancelled`` failure (thread backend; the
        other backends honour it at run boundaries).
    metrics: optional telemetry sink (duck-typed — any object with
        ``record_run`` / ``record_world``, e.g.
        :class:`repro.service.metrics.ServiceMetrics`).  Records the
        run's algorithm/backend/outcome (``ok``, ``oom``,
        ``cancelled``, ``failed``) and its abort cause.  ``None`` — the
        default — keeps the hooks single ``is None`` checks, so direct
        runs are bit-for-bit unaffected (the tracer's contract).
    """
    requested = backend
    backend, why = resolve_backend(backend, algorithm, algo_opts)
    backend_info = {"requested": requested, "resolved": backend,
                    "reason": why,
                    "eligible": eligible_backends(algorithm)}
    if backend == "hybrid":
        res = _run_hybrid(algorithm, workload, n_per_rank=n_per_rank, p=p,
                          machine=machine, seed=seed, mem_factor=mem_factor,
                          algo_opts=algo_opts, faults=faults, trace=trace,
                          keep_outputs=keep_outputs)
        res.extras["backend"] = backend_info
        if metrics is not None:
            metrics.record_run(
                algorithm=algorithm, backend=backend,
                outcome="ok" if res.ok else
                ("oom" if res.oom else "failed"))
        return res
    try:
        spec = ALGORITHMS[algorithm]
    except KeyError:
        raise KeyError(f"unknown algorithm {algorithm!r}; "
                       f"options: {sorted(ALGORITHMS)}") from None
    opts = dict(algo_opts or {})
    stable = spec.stable
    fplan = (faults.compile(p, fault_seed)
             if faults is not None and not faults.empty else None)

    probe = workload.shard(max(1, min(n_per_rank, 64)), p, 0, seed)
    record_bytes = probe.record_bytes + 12  # + provenance columns
    capacity = (None if mem_factor is None
                else int(mem_factor * n_per_rank * record_bytes))

    prog = _SortProgram(algorithm, workload, n_per_rank, seed, opts)

    tracer = None
    if trace:
        from .obs import Tracer
        tracer = Tracer(p)
        tracer.meta.update({
            "algorithm": algorithm, "workload": workload.name,
            "p": p, "n_per_rank": n_per_rank, "seed": seed,
            "machine": machine.name,
            "faults": faults.as_dict() if fplan is not None else None,
        })

    res = run_spmd(prog, p, machine=machine, mem_capacity=capacity,
                   check=False, faults=fplan, tracer=tracer,
                   backend=backend, procs=procs, pool=pool, cancel=cancel,
                   metrics=metrics)

    if res.failure is not None:
        cause = res.failure.cause
        if metrics is not None:
            metrics.record_run(
                algorithm=algorithm, backend=backend,
                outcome=("cancelled" if isinstance(cause, RunCancelled)
                         else "oom" if isinstance(cause, MemoryError)
                         else "failed"),
                cause=cause)
        return RunResult(
            algorithm=algorithm, workload=workload.name, p=p,
            n_per_rank=n_per_rank, record_bytes=record_bytes,
            ok=False, oom=isinstance(cause, MemoryError), elapsed=0.0,
            failure=f"rank {res.failure.rank}: {cause!r}",
            extras={"backend": backend_info},
        )

    if metrics is not None:
        metrics.record_run(algorithm=algorithm, backend=backend,
                           outcome="ok")

    inputs = [r[0] for r in res.results]
    outcomes = [r[1] for r in res.results]
    outputs = [o.batch for o in outcomes]
    crashed_ranks = [r for r, o in enumerate(outcomes)
                     if o.info.get("crashed")]
    if validate:
        # degraded completion: a crashed rank's input left the world
        # with it — survivors must deliver *their* data sorted
        live_inputs = (inputs if not crashed_ranks
                       else [inp for r, inp in enumerate(inputs)
                             if r not in set(crashed_ranks)])
        check_sorted(live_inputs, outputs, stable=stable)

    # the decision trace lives on active ranks (a crashed rank's trace
    # stops at the crash and lacks the recovery record)
    traced = next((o for o in outcomes if o.active), outcomes[0])

    extras: dict[str, Any] = {
        "engine": dict(res.extras),
        "backend": backend_info,
        "mem_peaks": res.mem_peaks,
        "decisions": traced.info.get("decisions"),
        "p_active": sum(1 for o in outcomes if o.active),
        "bytes_sent": sum(c.get("bytes.sent", 0) for c in res.counters),
        "messages": sum(c.get("p2p.send", 0) for c in res.counters),
        "traces": res.traces,
    }
    if fplan is not None:
        agg: dict[str, float] = {}
        for c in res.counters:
            for k, v in c.items():
                if k.startswith(_FAULT_COUNTER_PREFIXES):
                    agg[k] = agg.get(k, 0.0) + v
        extras["faults"] = {k: agg[k] for k in sorted(agg)}
        extras["crashed_ranks"] = crashed_ranks
        extras["fault_plan"] = fplan.describe()
    if tracer is not None:
        from .obs import TraceReport
        extras["trace"] = TraceReport.from_run(
            tracer, clocks=res.clocks, engine_counters=res.counters)

    return RunResult(
        algorithm=algorithm, workload=workload.name, p=p,
        n_per_rank=n_per_rank, record_bytes=record_bytes,
        ok=True, oom=False, elapsed=res.elapsed,
        loads=[len(b) for b in outputs],
        phase_times=res.phase_breakdown(),
        outputs=outputs if keep_outputs else None,
        extras=extras,
    )


def _run_hybrid(algorithm: str, workload: Workload, *, n_per_rank: int,
                p: int, machine: MachineSpec, seed: int,
                mem_factor: float | None, algo_opts: dict[str, Any] | None,
                faults: Any, trace: bool,
                keep_outputs: bool) -> RunResult:
    """``backend="hybrid"``: analytic arithmetic + sampled validation.

    Giant-p points (4Ki..128Ki+) that the functional engine cannot host
    are computed from the count-space/cost models while a deterministic
    rank sample runs the functional per-rank pipeline; the agreement
    evidence lands in ``extras["hybrid"]``.  Faults, tracing, algorithm
    options and per-rank outputs are functional-engine features and are
    rejected rather than silently ignored.
    """
    from .simfast import hybrid_scaling_point

    unsupported = [name for name, on in (
        ("faults", faults is not None and not getattr(faults, "empty", False)),
        ("trace", trace), ("algo_opts", bool(algo_opts)),
        ("keep_outputs", keep_outputs)) if on]
    if unsupported:
        raise ValueError("hybrid backend computes analytically and cannot "
                         f"honour: {', '.join(unsupported)}")

    point = hybrid_scaling_point(
        algorithm, workload, n_per_rank=n_per_rank, p=p, machine=machine,
        seed=seed,
        mem_factor=math.inf if mem_factor is None else mem_factor)
    phases = point.phases
    return RunResult(
        algorithm=algorithm, workload=workload.name, p=p,
        n_per_rank=n_per_rank, record_bytes=point.record_bytes,
        ok=point.ok, oom=phases.oom, elapsed=phases.total,
        loads=[],  # p-sized load vectors live in count space, not here
        phase_times=phases.breakdown(),
        failure=None if point.ok else (
            "oom (modelled)" if phases.oom else "hybrid validation failed"),
        extras={
            "engine": {"backend": "hybrid", "workers": 0,
                       "sampled_ranks": point.validation["sampled_ranks"]},
            "hybrid": dict(point.validation),
            "max_load": point.max_load,
            "rdfa": point.rdfa,
        },
    )
