"""Job specifications for the sort-as-a-service front end.

A :class:`JobSpec` is the unit of work the service accepts: everything
:func:`repro.runner.run_sort` needs to reproduce one distributed sort,
as a validated, JSON-serialisable value.  Validation resolves against
the same registries the CLI uses (:data:`repro.runner.ALGORITHMS`,
:data:`repro.runner.BACKENDS`, :func:`repro.workloads.by_name`,
:func:`repro.machine.get_machine`), so a spec that validates here runs
identically whether it arrives over the wire, from the in-process
client, or from ``sdssort sort`` directly — and the per-job
``trace`` / ``faults`` / ``explain`` options turn the observability and
chaos subsystems into per-request features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..faults.spec import FaultSpec
from ..machine import get_machine
from ..runner import (
    ALGORITHMS,
    BACKENDS,
    MEM_FACTOR,
    RunResult,
    eligible_backends,
    resolve_backend,
    run_sort,
)
from ..workloads import by_name

#: Priority classes, best first.  The queue drains strictly by class
#: (FIFO within one), so an ``interactive`` job overtakes every queued
#: ``batch`` job but never preempts one that is already running.
PRIORITIES = ("interactive", "batch", "bulk")

#: Default priority class for submissions that don't name one.
DEFAULT_PRIORITY = "batch"


class JobValidationError(ValueError):
    """A job spec failed validation against the runner registries."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise JobValidationError(message)


@dataclass(frozen=True)
class JobSpec:
    """One validated sort request.

    Mirrors :func:`repro.runner.run_sort`'s signature field for field;
    ``workload`` travels by name plus ``workload_opts`` (the generator
    kwargs, e.g. ``{"alpha": 0.9}`` for zipf) so the spec stays a pure
    value that serialises losslessly — each run rebuilds the workload
    deterministically from ``(name, opts, seed)``.
    """

    algorithm: str = "sds"
    workload: str = "uniform"
    workload_opts: dict[str, Any] = field(default_factory=dict)
    p: int = 16
    n_per_rank: int = 2000
    backend: str = "thread"
    procs: int | None = None
    machine: str = "edison"
    seed: int = 0
    mem_factor: float | None = MEM_FACTOR
    algo_opts: dict[str, Any] = field(default_factory=dict)
    faults: FaultSpec | None = None
    fault_seed: int = 0
    trace: bool = False
    explain: bool = False

    # -- validation ---------------------------------------------------
    def validate(self) -> "JobSpec":
        """Check every field against the registries; returns ``self``.

        Raises :class:`JobValidationError` with a submit-worthy message
        — the service maps it to a typed ``invalid`` rejection instead
        of letting a bad spec reach the engine.
        """
        _require(self.algorithm in ALGORITHMS,
                 f"unknown algorithm {self.algorithm!r}; "
                 f"options: {sorted(ALGORITHMS)}")
        _require(self.backend in BACKENDS,
                 f"unknown backend {self.backend!r}; "
                 f"options: {list(BACKENDS)}")
        resolved, _ = resolve_backend(self.backend, self.algorithm)
        _require(resolved in eligible_backends(self.algorithm),
                 f"backend {resolved!r} cannot run algorithm "
                 f"{self.algorithm!r} (eligible: "
                 f"{eligible_backends(self.algorithm)})")
        _require(isinstance(self.p, int) and self.p >= 1,
                 f"p must be an integer >= 1, got {self.p!r}")
        _require(isinstance(self.n_per_rank, int) and self.n_per_rank >= 0,
                 f"n_per_rank must be an integer >= 0, got "
                 f"{self.n_per_rank!r}")
        _require(self.procs is None
                 or (isinstance(self.procs, int) and self.procs >= 1),
                 f"procs must be None or an integer >= 1, got {self.procs!r}")
        _require(self.mem_factor is None or self.mem_factor > 0,
                 f"mem_factor must be None or > 0, got {self.mem_factor!r}")
        _require(self.faults is None or isinstance(self.faults, FaultSpec),
                 f"faults must be a FaultSpec or None, "
                 f"got {type(self.faults).__name__}")
        if resolved == "hybrid":
            # the analytic backend cannot honour functional-engine
            # features; reject at admission, not deep in the runner
            blocked = [name for name, on in (
                ("faults", self.faults is not None and not self.faults.empty),
                ("trace", self.trace),
                ("algo_opts", bool(self.algo_opts))) if on]
            _require(not blocked,
                     "hybrid backend computes analytically and cannot "
                     f"honour: {', '.join(blocked)}")
        try:
            get_machine(self.machine)
        except KeyError as exc:
            raise JobValidationError(str(exc)) from None
        try:
            self.build_workload()
        except (KeyError, TypeError) as exc:
            raise JobValidationError(
                f"bad workload {self.workload!r} "
                f"(opts {self.workload_opts!r}): {exc}") from None
        return self

    # -- execution ----------------------------------------------------
    def build_workload(self):
        """The workload generator this spec names (rebuilt per call)."""
        return by_name(self.workload, **dict(self.workload_opts))

    def run(self, *, pool: Any = None, cancel: Any = None,
            metrics: Any = None) -> RunResult:
        """Execute the job exactly as a direct :func:`run_sort` would.

        ``pool`` / ``cancel`` / ``metrics`` are the scheduler's
        warm-pool lease, cancellation event and telemetry sink; with
        all three ``None`` this *is* the direct call, which is what
        the service's bit-identical contract (``tests/test_service.py``)
        pins down.  Telemetry is observational either way — the result
        is byte-identical with or without it.
        """
        return run_sort(
            self.algorithm, self.build_workload(),
            n_per_rank=self.n_per_rank, p=self.p,
            machine=get_machine(self.machine), seed=self.seed,
            mem_factor=self.mem_factor, algo_opts=dict(self.algo_opts),
            faults=self.faults, fault_seed=self.fault_seed,
            trace=self.trace, backend=self.backend, procs=self.procs,
            pool=pool, cancel=cancel, metrics=metrics)

    # -- serialisation ------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dump; ``from_dict`` round-trips it losslessly."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "workload_opts": dict(self.workload_opts),
            "p": self.p,
            "n_per_rank": self.n_per_rank,
            "backend": self.backend,
            "procs": self.procs,
            "machine": self.machine,
            "seed": self.seed,
            "mem_factor": self.mem_factor,
            "algo_opts": dict(self.algo_opts),
            "faults": None if self.faults is None else self.faults.as_dict(),
            "fault_seed": self.fault_seed,
            "trace": self.trace,
            "explain": self.explain,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        """Build and validate a spec from wire/JSON form.

        ``faults`` accepts a chaos preset name, a ``FaultSpec`` dict,
        an existing :class:`FaultSpec`, or ``None``.  Unknown keys are
        an error — a typo'd option must not silently become a default.
        """
        fields = dict(data)
        unknown = set(fields) - {
            "algorithm", "workload", "workload_opts", "p", "n_per_rank",
            "backend", "procs", "machine", "seed", "mem_factor",
            "algo_opts", "faults", "fault_seed", "trace", "explain"}
        if unknown:
            raise JobValidationError(
                f"unknown job fields: {sorted(unknown)}")
        faults = fields.get("faults")
        if faults is not None and not isinstance(faults, FaultSpec):
            from ..faults.chaos import spec_from_config
            try:
                fields["faults"] = spec_from_config(faults)
            except (KeyError, TypeError, ValueError) as exc:
                raise JobValidationError(f"bad faults: {exc}") from None
        try:
            spec = cls(**fields)
        except TypeError as exc:
            raise JobValidationError(str(exc)) from None
        return spec.validate()
