"""The service's job ledger: :class:`Job` records and :class:`JobQueue`.

The queue drains strictly by priority class (`repro.service.spec.
PRIORITIES`), FIFO within a class — a deterministic total order over
any submission sequence, which is what makes the service's scheduling
reproducible enough to golden-test.  Cancellation is lazy: a cancelled
job stays in the heap but is skipped at pop time, so cancel is O(1)
and never perturbs sibling ordering.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..runner import RunResult
from .admission import AdmissionDecision
from .spec import PRIORITIES, JobSpec

#: Every state a job can be in.  ``rejected`` jobs never enter the
#: queue; ``timeout`` is a cancellation the deadline watchdog issued.
JOB_STATES = ("queued", "running", "done", "failed", "rejected",
              "cancelled", "timeout")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "rejected", "cancelled", "timeout")


@dataclass
class Job:
    """One submission's full lifecycle record."""

    id: str
    spec: JobSpec
    priority: str
    seq: int
    timeout_s: float | None = None
    status: str = "queued"
    admission: AdmissionDecision | None = None
    result: RunResult | None = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: threading.Event = field(default_factory=threading.Event)
    timed_out: bool = field(default=False, repr=False)

    @property
    def deadline(self) -> float | None:
        """Monotonic deadline (timeout counts from submission)."""
        if self.timeout_s is None:
            return None
        return self.submitted_at + self.timeout_s

    @property
    def queue_ms(self) -> float:
        """Milliseconds spent waiting before the run started."""
        end = self.started_at if self.started_at is not None \
            else self.finished_at
        if end is None:
            return (time.monotonic() - self.submitted_at) * 1e3
        return (end - self.submitted_at) * 1e3

    @property
    def run_ms(self) -> float:
        """Milliseconds the run itself took (0 until it starts)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None \
            else time.monotonic()
        return (end - self.started_at) * 1e3

    @property
    def total_ms(self) -> float:
        end = self.finished_at if self.finished_at is not None \
            else time.monotonic()
        return (end - self.submitted_at) * 1e3

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def finish(self, status: str, *, error: str | None = None) -> None:
        """Move to a terminal state and wake every result() waiter."""
        self.status = status
        if error is not None:
            self.error = error
        self.finished_at = time.monotonic()
        self.done_event.set()


class JobQueue:
    """Bounded-by-admission priority queue of queued :class:`Job`\\ s.

    Depth bounding lives in the admission controller (the decision must
    be typed, not an exception from a full queue); this class only
    orders and hands out work.  ``pop`` skips jobs that were cancelled
    while queued, returning them via the ``reaped`` callback so the
    scheduler can finalise their bookkeeping.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._cond = threading.Condition()

    def depth(self) -> int:
        """Jobs still waiting (cancelled-but-unreaped ones excluded)."""
        with self._cond:
            return sum(1 for _, _, j in self._heap if j.status == "queued")

    def depth_by_class(self) -> dict[str, int]:
        """Waiting jobs per priority class (telemetry gauges)."""
        out = {priority: 0 for priority in PRIORITIES}
        with self._cond:
            for _, _, j in self._heap:
                if j.status == "queued":
                    out[j.priority] += 1
        return out

    def push(self, job: Job) -> None:
        rank = PRIORITIES.index(job.priority)
        with self._cond:
            heapq.heappush(self._heap, (rank, job.seq, job))
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Next runnable job in (priority, seq) order, or ``None``.

        Jobs cancelled while queued are skipped (their terminal state
        was already set by ``cancel``); returns ``None`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.status == "queued":
                        return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def wake_all(self) -> None:
        """Wake blocked poppers (service shutdown)."""
        with self._cond:
            self._cond.notify_all()


def envelope_timing(job: Job) -> dict[str, Any]:
    """The ``timing`` block of the ``sdssort.job/v1`` envelope."""
    return {
        "queue_ms": round(job.queue_ms, 3),
        "run_ms": round(job.run_ms, 3),
        "total_ms": round(job.total_ms, 3),
    }
