"""Sort-as-a-service: job queue, admission control, warm-pool scheduling.

The subsystem behind ``sdssort serve`` / ``sdssort submit`` and the
in-process :class:`ServiceClient`.  See ``docs/service.md`` for the
protocol, the admission-control math, and the drain state machine.
"""

from .admission import (ADMISSION_CODES, DEFAULT_MEM_BUDGET,
                        DEFAULT_QUEUE_DEPTH, AdmissionController,
                        AdmissionDecision, estimate_job_bytes)
from .client import ServiceClient, ServiceError, SocketClient
from .daemon import serve_socket, serve_stdio
from .jsondoc import (JOB_SCHEMA, METRICS_SCHEMA, SORT_SCHEMA,
                      comparable, job_envelope, metrics_doc, sort_doc)
from .metrics import POOL_EVENTS, RUN_OUTCOMES, ServiceMetrics
from .pools import WarmPoolCache, make_cold_lease, pool_key
from .queue import JOB_STATES, TERMINAL_STATES, Job, JobQueue
from .scheduler import Scheduler, ServiceState, SortService
from .slog import LOG_LEVELS, configure_logging, log_event, \
    service_logger
from .spec import (DEFAULT_PRIORITY, PRIORITIES, JobSpec,
                   JobValidationError)

__all__ = [
    "ADMISSION_CODES", "DEFAULT_MEM_BUDGET", "DEFAULT_PRIORITY",
    "DEFAULT_QUEUE_DEPTH", "JOB_SCHEMA", "JOB_STATES", "LOG_LEVELS",
    "METRICS_SCHEMA", "POOL_EVENTS", "PRIORITIES", "RUN_OUTCOMES",
    "SORT_SCHEMA", "TERMINAL_STATES", "AdmissionController",
    "AdmissionDecision", "Job", "JobQueue", "JobSpec",
    "JobValidationError", "Scheduler", "ServiceClient", "ServiceError",
    "ServiceMetrics", "ServiceState", "SocketClient", "SortService",
    "WarmPoolCache", "comparable", "configure_logging",
    "estimate_job_bytes", "job_envelope", "log_event",
    "make_cold_lease", "metrics_doc", "pool_key", "serve_socket",
    "serve_stdio", "service_logger", "sort_doc",
]
