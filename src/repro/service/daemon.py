"""The ``sdssort serve`` daemon: JSON-lines ops over stdio or a socket.

Protocol: one JSON object per line in, one per line out, in lock step
per connection.  Requests carry ``{"op": ...}`` plus op-specific
fields; responses are ``{"ok": true, ...}`` or ``{"ok": false,
"error": "..."}`` — a malformed line is an error *response*, never a
dead daemon.  Ops:

    submit  {"spec": {...}, "priority"?, "timeout_s"?} -> {"job": env}
    status  {"job_id"}                                 -> {"job": env}
    result  {"job_id", "wait"?: true, "timeout"?}      -> {"job": env}
    cancel  {"job_id"}                                 -> {"job": env}
    stats   {}                                         -> {"stats": {...}}
    metrics {"format"?: "json"|"prometheus"}
            -> {"metrics": doc} or {"text": exposition}
    drain   {}          -> {"drained": true, "stats", "metrics"?}
                           and the daemon exits

where ``env`` is the ``sdssort.job/v1`` envelope and ``doc`` the
``sdssort.metrics/v1`` telemetry document.  ``drain`` finishes queued
+ running work first, so its response doubles as the barrier a
scripted client (the CI smoke job) waits on — and carries the final
metrics scrape (when telemetry is on), since no further request can
reach the daemon after it.

Transports: ``serve_stdio`` serves exactly one client on stdin/stdout
(pipes, ``subprocess``); ``serve_socket`` binds a Unix socket and
serves each connection on its own thread — blocking ``result`` waits
never stall other clients.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
from typing import Any, Callable, TextIO

from .jsondoc import job_envelope, metrics_doc
from .scheduler import SortService
from .slog import log_event, service_logger

#: Ops a request may name (anything else is an error response).
OPS = ("submit", "status", "result", "cancel", "stats", "metrics",
       "drain")

_LOG = service_logger("service.daemon")


def handle_request(service: SortService, doc: dict[str, Any],
                   ) -> tuple[dict[str, Any], bool]:
    """Dispatch one request; returns ``(response, should_exit)``."""
    op = doc.get("op")
    try:
        if op == "submit":
            spec = doc.get("spec")
            if not isinstance(spec, dict):
                raise ValueError('submit needs a "spec" object')
            job = service.submit(
                spec, priority=doc.get("priority", "batch"),
                timeout_s=doc.get("timeout_s"))
            return {"ok": True, "job": job_envelope(job,
                                                    include_result=False)}, \
                False
        if op == "status":
            job = service.get(_job_id(doc))
            return {"ok": True,
                    "job": job_envelope(job, include_result=False)}, False
        if op == "result":
            if doc.get("wait", True):
                job = service.wait(_job_id(doc), doc.get("timeout"))
            else:
                job = service.get(_job_id(doc))
            return {"ok": True, "job": job_envelope(job)}, False
        if op == "cancel":
            job = service.cancel(_job_id(doc))
            return {"ok": True,
                    "job": job_envelope(job, include_result=False)}, False
        if op == "stats":
            return {"ok": True, "stats": service.stats()}, False
        if op == "metrics":
            fmt = doc.get("format", "json")
            if fmt == "prometheus":
                from ..obs.telemetry import render_prometheus
                metrics_doc(service)  # raises if telemetry is off
                return {"ok": True,
                        "content_type": "text/plain; version=0.0.4",
                        "text": render_prometheus(
                            service.metrics.registry)}, False
            if fmt != "json":
                raise ValueError(f"unknown metrics format {fmt!r}; "
                                 "options: 'json', 'prometheus'")
            return {"ok": True, "metrics": metrics_doc(service)}, False
        if op == "drain":
            service.drain()
            response = {"ok": True, "drained": True,
                        "stats": service.stats()}
            if service.metrics is not None:
                # the daemon exits after this line hits the wire, so
                # the drain response is the last possible scrape
                response["metrics"] = metrics_doc(service)
            return response, True
        return {"ok": False,
                "error": f"unknown op {op!r}; options: {list(OPS)}"}, False
    except Exception as exc:  # noqa: BLE001 - protocol error boundary
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}, False


def _job_id(doc: dict[str, Any]) -> str:
    job_id = doc.get("job_id")
    if not isinstance(job_id, str):
        raise ValueError('request needs a "job_id" string')
    return job_id


def _dispatch_line(service: SortService, line: str
                   ) -> tuple[dict[str, Any], bool]:
    line = line.strip()
    if not line:
        return {"ok": False, "error": "empty request line"}, False
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": f"bad JSON: {exc}"}, False
    if not isinstance(doc, dict):
        return {"ok": False, "error": "request must be a JSON object"}, False
    response, should_exit = handle_request(service, doc)
    log_event(_LOG, "request", level=logging.DEBUG, op=doc.get("op"),
              ok=bool(response.get("ok")), job_id=doc.get("job_id"))
    return response, should_exit


def serve_stdio(service: SortService, rfile: TextIO, wfile: TextIO) -> None:
    """Serve one client over text streams until EOF or ``drain``.

    EOF without a ``drain`` still drains before returning — closing the
    pipe is the polite way to stop a stdio daemon.
    """
    try:
        for line in rfile:
            response, should_exit = _dispatch_line(service, line)
            wfile.write(json.dumps(response, sort_keys=True) + "\n")
            wfile.flush()
            if should_exit:
                return
        service.drain()
    finally:
        service.close()


def serve_socket(service: SortService, path: str, *,
                 ready: Callable[[], None] | None = None) -> None:
    """Bind ``path`` and serve until a client sends ``drain``.

    Each connection gets its own thread so one client blocking on
    ``result`` doesn't starve the rest; ``ready`` (if given) fires once
    the socket is listening — the CLI uses it to print the path only
    when connecting can succeed.
    """
    if os.path.exists(path):
        os.unlink(path)  # a stale socket from a dead daemon
    stop = threading.Event()
    conn_threads: list[threading.Thread] = []
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        listener.bind(path)
        listener.listen()
        listener.settimeout(0.2)
        log_event(_LOG, "listening", socket=path)
        if ready is not None:
            ready()
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            log_event(_LOG, "connection_opened", level=logging.DEBUG,
                      socket=path)
            t = threading.Thread(target=_serve_connection,
                                 args=(service, conn, stop),
                                 name="sort-service-conn", daemon=True)
            t.start()
            conn_threads.append(t)
        for t in conn_threads:
            t.join(timeout=5.0)
    finally:
        listener.close()
        if os.path.exists(path):
            os.unlink(path)
        service.close()
        log_event(_LOG, "daemon_exit", socket=path)


def _serve_connection(service: SortService, conn: socket.socket,
                      stop: threading.Event) -> None:
    rfile = conn.makefile("r", encoding="utf-8")
    try:
        for line in rfile:
            response, should_exit = _dispatch_line(service, line)
            conn.sendall((json.dumps(response, sort_keys=True)
                          + "\n").encode("utf-8"))
            if should_exit:
                stop.set()
                return
    except OSError:
        pass  # client went away mid-write; the service is unaffected
    finally:
        rfile.close()
        conn.close()
