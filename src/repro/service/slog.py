"""Structured logging for the service: JSON-lines or key=value text.

The service logs *events*, not prose: every record is an event name
plus typed fields (``job_id``, ``status``, ``code``, …).  Modules emit
through :func:`log_event` on their own child of the ``sdssort``
logger; nothing is printed unless the process opts in with
:func:`configure_logging` (``sdssort serve --log-level info
[--log-json]``), so library use of the service stays silent — there
are no ad-hoc ``print``\\ s anywhere in the subsystem.

Records always go to **stderr**: stdout belongs to the JSON-lines
protocol (stdio transport) and to command output.

JSON-lines shape (one object per record, sorted keys)::

    {"event": "job_finished", "job_id": "j-000003", "level": "info",
     "logger": "sdssort.service.scheduler", "status": "done",
     "ts": 1723045000.123}

Text shape: the stdlib prefix followed by ``key=value`` pairs::

    2026-08-07 12:00:00 INFO sdssort.service.scheduler job_finished \
job_id=j-000003 status=done
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

__all__ = ["LOG_LEVELS", "configure_logging", "log_event", "service_logger"]

#: Root logger of the subsystem; modules use children of it.
ROOT_LOGGER = "sdssort"

#: ``--log-level`` choices.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: The attribute structured fields travel on inside a ``LogRecord``.
_FIELDS_ATTR = "sdssort_fields"

# library silence: without this, stdlib's lastResort handler would
# print WARNING+ events (job rejections) from embedded services that
# never opted into logging.  Records still propagate to any root
# handlers an application configures.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def service_logger(name: str) -> logging.Logger:
    """The subsystem logger for one module (a child of ``sdssort``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(logger: logging.Logger, event: str, *,
              level: int = logging.INFO, **fields: Any) -> None:
    """Emit one structured event (cheap no-op below the logger level)."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record, deterministic key order."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        doc.update(getattr(record, _FIELDS_ATTR, None) or {})
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=repr)


class KeyValueFormatter(logging.Formatter):
    """Human-readable text with the structured fields as key=value."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s",
                         datefmt="%Y-%m-%d %H:%M:%S")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        if fields:
            line += " " + " ".join(f"{k}={fields[k]}"
                                   for k in sorted(fields))
        return line


def configure_logging(level: str = "info", *, json_lines: bool = False,
                      stream: TextIO | None = None) -> logging.Logger:
    """Attach one stderr handler to the ``sdssort`` logger.

    Idempotent: reconfiguring replaces the previous subsystem handler
    instead of stacking a second one.  Returns the configured logger.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"options: {list(LOG_LEVELS)}")
    logger = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonLineFormatter() if json_lines
                         else KeyValueFormatter())
    handler.sdssort_handler = True  # type: ignore[attr-defined]
    for old in [h for h in logger.handlers
                if getattr(h, "sdssort_handler", False)]:
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    return logger
