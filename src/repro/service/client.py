"""Clients for the sort service: in-process and over the wire.

:class:`ServiceClient` talks to a :class:`~repro.service.scheduler.
SortService` living in the same interpreter — the zero-copy embedding
used by the tests, the benchmark, and anything that wants a job queue
without a daemon.  :class:`SocketClient` speaks the same JSON-lines
protocol as ``sdssort serve`` over a Unix socket (one request line,
one response line per call) and backs ``sdssort submit``.

Both return plain dict envelopes (``sdssort.job/v1``) so callers never
need to know which transport they are on.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from .jsondoc import job_envelope, metrics_doc
from .scheduler import SortService
from .spec import DEFAULT_PRIORITY, JobSpec


class ServiceClient:
    """In-process facade over a :class:`SortService`.

    Owns the service it creates (and closes it on exit) unless one is
    passed in, in which case the caller keeps lifecycle control.
    """

    def __init__(self, service: SortService | None = None, **service_opts: Any):
        self._owned = service is None
        self.service = service if service is not None \
            else SortService(**service_opts)

    def submit(self, spec: JobSpec | dict[str, Any], *,
               priority: str = DEFAULT_PRIORITY,
               timeout_s: float | None = None) -> dict[str, Any]:
        """Submit a job; returns its envelope (maybe already rejected)."""
        job = self.service.submit(spec, priority=priority,
                                  timeout_s=timeout_s)
        return job_envelope(job, include_result=False)

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's envelope without the (possibly large) result."""
        return job_envelope(self.service.get(job_id), include_result=False)

    def result(self, job_id: str, *, wait: bool = True,
               timeout: float | None = None) -> dict[str, Any]:
        """The full envelope, blocking for completion by default."""
        job = self.service.wait(job_id, timeout) if wait \
            else self.service.get(job_id)
        return job_envelope(job)

    def run(self, spec: JobSpec | dict[str, Any], *,
            priority: str = DEFAULT_PRIORITY,
            timeout_s: float | None = None) -> dict[str, Any]:
        """Submit and wait: one call, the completed envelope."""
        job = self.service.submit(spec, priority=priority,
                                  timeout_s=timeout_s)
        if not job.terminal:
            job.done_event.wait()
        return job_envelope(job)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return job_envelope(self.service.cancel(job_id),
                            include_result=False)

    def stats(self) -> dict[str, Any]:
        return self.service.stats()

    def metrics(self) -> dict[str, Any]:
        """The ``sdssort.metrics/v1`` telemetry scrape."""
        return metrics_doc(self.service)

    def drain(self, timeout: float | None = None) -> bool:
        return self.service.drain(timeout)

    def close(self) -> None:
        if self._owned:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ServiceError(RuntimeError):
    """The daemon answered ``{"ok": false}`` to a request."""


class SocketClient:
    """JSON-lines client for a ``sdssort serve --socket PATH`` daemon.

    One connection, request/response in lock step; every method mirrors
    a protocol op and returns the daemon's payload (raising
    :class:`ServiceError` on ``ok: false``).
    """

    def __init__(self, path: str, *, connect_timeout: float = 5.0):
        self.path = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        self._sock.connect(path)
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("r", encoding="utf-8")

    def request(self, op: str, **payload: Any) -> dict[str, Any]:
        """Send one op; return the response dict (checked for ok)."""
        line = json.dumps({"op": op, **payload}, sort_keys=True)
        self._sock.sendall(line.encode("utf-8") + b"\n")
        reply = self._rfile.readline()
        if not reply:
            raise ServiceError(f"daemon at {self.path} closed the "
                               f"connection mid-request ({op})")
        doc = json.loads(reply)
        if not doc.get("ok"):
            raise ServiceError(doc.get("error") or "daemon request failed")
        return doc

    def submit(self, spec: JobSpec | dict[str, Any], *,
               priority: str = DEFAULT_PRIORITY,
               timeout_s: float | None = None) -> dict[str, Any]:
        spec_doc = spec.as_dict() if isinstance(spec, JobSpec) else spec
        req: dict[str, Any] = {"spec": spec_doc, "priority": priority}
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        return self.request("submit", **req)["job"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self.request("status", job_id=job_id)["job"]

    def result(self, job_id: str, *, wait: bool = True,
               timeout: float | None = None) -> dict[str, Any]:
        req: dict[str, Any] = {"job_id": job_id, "wait": wait}
        if timeout is not None:
            req["timeout"] = timeout
        return self.request("result", **req)["job"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request("cancel", job_id=job_id)["job"]

    def stats(self) -> dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics(self, *, format: str = "json") -> dict[str, Any] | str:
        """Scrape telemetry: the metrics/v1 doc, or Prometheus text."""
        out = self.request("metrics", format=format)
        return out["text"] if format == "prometheus" else out["metrics"]

    def drain(self) -> dict[str, Any]:
        """Ask the daemon to drain and exit once idle.

        The response carries the final ``stats`` and (telemetry on)
        the final ``metrics`` document — the last possible scrape.
        """
        return self.request("drain")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
