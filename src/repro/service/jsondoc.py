"""JSON documents shared by ``sdssort sort --json`` and the service.

One builder produces the ``sdssort.sort/v4`` result document for both
the direct CLI path and service job results, so the two are diffable
with the same tooling: v4 adds ``timing.queue_ms`` / ``timing.run_ms``
(wall milliseconds — zero for direct runs, measured for service jobs).
Service responses wrap the result in a ``sdssort.job/v1`` envelope
carrying the job id, lifecycle status, queue/run/total latency and the
admission decision.

:func:`comparable` strips the host-dependent fields (wall timings, the
pool-thread count a warm pool happens to have grown to) so golden
equivalence between a direct run and a service run compares exactly
the simulation-determined payload.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from ..runner import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .queue import Job
    from .scheduler import SortService

#: Result document schema (``sort --json`` and job envelopes).
SORT_SCHEMA = "sdssort.sort/v4"

#: Service response envelope schema.
JOB_SCHEMA = "sdssort.job/v1"

#: Telemetry scrape schema (the ``metrics`` op's JSON form).
METRICS_SCHEMA = "sdssort.metrics/v1"


def sort_doc(r: RunResult, *, machine: str, seed: int,
             fault_seed: int = 0, queue_ms: float = 0.0,
             run_ms: float = 0.0, explain: bool = False) -> dict[str, Any]:
    """The ``sdssort.sort/v4`` document for one :class:`RunResult`.

    ``queue_ms`` / ``run_ms`` are wall-clock milliseconds a service
    measured around the run; direct runs pass the zeros (the v4
    contract: the fields are always present, so service and direct
    results diff cleanly).
    """
    report = r.extras.get("trace")
    engine = dict(r.extras.get("engine") or {})
    resolved = r.extras.get("backend") or {}
    engine["resolved_backend"] = resolved
    engine["eligible_backends"] = resolved.get("eligible") or []
    doc = {
        "schema": SORT_SCHEMA,
        "algorithm": r.algorithm,
        "workload": r.workload,
        "machine": machine,
        "p": r.p,
        "n_per_rank": r.n_per_rank,
        "seed": seed,
        "fault_seed": fault_seed,
        "ok": r.ok,
        "oom": r.oom,
        "failure": r.failure,
        "elapsed": r.elapsed if r.ok else None,
        "throughput_tb_min": r.throughput_tb_min if r.ok else None,
        "rdfa": r.rdfa if r.ok else None,
        "phases": r.phase_times,
        "decisions": r.extras.get("decisions") or [],
        "faults": r.extras.get("faults"),
        "crashed_ranks": r.extras.get("crashed_ranks"),
        "trace": report.summary() if report is not None else None,
        "engine": engine,
        "hybrid": r.extras.get("hybrid"),
        # v4: wall latency split, zero for direct runs
        "timing": {"queue_ms": queue_ms, "run_ms": run_ms},
    }
    if explain:
        from ..core.plan import explain_lines
        doc["explain"] = explain_lines(doc["decisions"])
    return doc


def job_envelope(job: "Job", *, include_result: bool = True
                 ) -> dict[str, Any]:
    """The ``sdssort.job/v1`` envelope for one job's current state."""
    from .queue import envelope_timing

    doc = {
        "schema": JOB_SCHEMA,
        "job_id": job.id,
        "status": job.status,
        "priority": job.priority,
        "algorithm": job.spec.algorithm,
        "workload": job.spec.workload,
        "p": job.spec.p,
        "n_per_rank": job.spec.n_per_rank,
        "backend": job.spec.backend,
        "admission": (job.admission.as_dict()
                      if job.admission is not None else None),
        "timing": envelope_timing(job),
        "error": job.error,
        "result": None,
    }
    if include_result and job.result is not None:
        doc["result"] = sort_doc(
            job.result, machine=job.spec.machine, seed=job.spec.seed,
            fault_seed=job.spec.fault_seed,
            queue_ms=round(job.queue_ms, 3), run_ms=round(job.run_ms, 3),
            explain=job.spec.explain)
    return doc


def metrics_doc(service: "SortService") -> dict[str, Any]:
    """The ``sdssort.metrics/v1`` telemetry document.

    Registry snapshot (counters / gauges / histograms, fully sorted)
    plus the cross-job cost rollup.  Everything but histogram ``sum``
    fields and the latency gauges' wall values is deterministic for a
    given job stream — see ``docs/observability.md`` for which fields
    the determinism contract covers.

    Raises ``ValueError`` when the service was built with
    ``telemetry=False`` (the daemon maps that to an error response).
    """
    m = service.metrics
    if m is None:
        raise ValueError("telemetry is disabled on this service "
                         "(built with telemetry=False / --no-telemetry)")
    snap = m.registry.snapshot()
    return {
        "schema": METRICS_SCHEMA,
        "state": service.state.value,
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": snap["histograms"],
        "rollup": m.rollup.snapshot(),
    }


#: ``(path, key)`` pairs :func:`comparable` removes: wall-clock
#: latencies and warm-pool growth are host artifacts, not results.
_VOLATILE = (("timing",), ("engine", "pool_threads"))


def comparable(doc: dict[str, Any]) -> dict[str, Any]:
    """A deep copy of a sort/v4 doc minus host-dependent fields.

    Direct runs and service runs of the same :class:`JobSpec` are
    bit-identical under this projection — the contract the service
    determinism tests and the CI serve-smoke golden check assert.
    """
    out = copy.deepcopy(doc)
    for *path, key in _VOLATILE:
        node: Any = out
        for part in path:
            node = node.get(part) if isinstance(node, dict) else None
            if node is None:
                break
        if isinstance(node, dict):
            node.pop(key, None)
    return out
