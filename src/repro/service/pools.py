"""Keyed warm-pool cache: persistent engine pools reused across jobs.

The engine's pools already survive runs (``SpmdPool`` rank threads,
``ProcPool`` worker interpreters) — until now only benchmark sweeps
exploited that.  The cache makes pool survival a service feature: jobs
lease a pool keyed by ``(backend, p, procs)`` and return it warm, so a
stream of same-shaped requests pays thread/process start-up once, not
per job.  Leases are exclusive — a pool is handed to one job at a time
(concurrent same-key jobs get their own pools, created on demand), and
the lease refcount on :class:`~repro.mpi.engine.SpmdPool` guarantees
eviction can never tear a pool down under a borrower.
"""

from __future__ import annotations

import threading
from typing import Any

from ..mpi.engine import SpmdPool
from ..mpi.procpool import ProcPool, _auto_procs

#: Pool-backed engine backends; flat and hybrid run pool-less.
POOLED_BACKENDS = ("thread", "proc")

#: Default cap on idle pools retained across all keys.
DEFAULT_MAX_POOLS = 8


def pool_key(backend: str, p: int, procs: int | None
             ) -> tuple[Any, ...] | None:
    """Cache key of a job's pool, or ``None`` for pool-less backends.

    Thread pools are keyed by ``p`` (a pool grown to 4Ki threads is
    wasted on p=16 jobs and vice versa); proc pools additionally by
    the resolved worker count, which fixes the shard topology.
    """
    if backend == "thread":
        return ("thread", p)
    if backend == "proc":
        nprocs = min(procs if procs is not None else _auto_procs(p), p)
        return ("proc", p, nprocs)
    return None


class PoolLease:
    """One job's exclusive hold on a cached (or throwaway) pool."""

    def __init__(self, cache: "WarmPoolCache | None", key: tuple | None,
                 pool: Any, throwaway: bool = False):
        self._cache = cache
        self.key = key
        self.pool = pool
        self._throwaway = throwaway
        self._released = False

    def release(self) -> None:
        """Return the pool to the cache (idempotent)."""
        if self._released:
            return
        self._released = True
        if self.pool is None:
            return
        if isinstance(self.pool, SpmdPool):
            self.pool.release()
        if self._throwaway or self._cache is None:
            _shutdown_pool(self.pool)
        else:
            self._cache._return(self.key, self.pool)

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


def _shutdown_pool(pool: Any) -> None:
    pool.shutdown()


def make_cold_lease(backend: str, p: int, procs: int | None) -> PoolLease:
    """A fresh single-use pool, shut down on release (cold start).

    The throughput benchmark's ``cold`` arm and ``warm_pools=False``
    services use this so every job pays full thread/process start-up —
    the baseline the cache is measured against.
    """
    key = pool_key(backend, p, procs)
    if key is None:
        return PoolLease(None, None, None)
    if key[0] == "thread":
        return PoolLease(None, key, SpmdPool().lease(), throwaway=True)
    return PoolLease(None, key, ProcPool(key[2]), throwaway=True)


class WarmPoolCache:
    """Bounded cache of idle engine pools, keyed by job shape.

    ``lease`` hands out an idle pool for the key (hit) or creates one
    (miss); ``_return`` re-shelves it unless the idle set is at
    ``max_pools``, in which case the pool is shut down (eviction —
    safe, because a just-released pool holds no leases).  All
    bookkeeping is under one lock; pool *use* happens outside it.
    """

    def __init__(self, max_pools: int = DEFAULT_MAX_POOLS,
                 metrics: Any = None):
        if max_pools < 1:
            raise ValueError("max_pools must be >= 1")
        self.max_pools = max_pools
        self._lock = threading.Lock()
        self._idle: dict[tuple, list[Any]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # optional ServiceMetrics (duck-typed): mirrors the three
        # counters into the registry; None keeps the cache standalone
        self._metrics = metrics

    def lease(self, backend: str, p: int, procs: int | None) -> PoolLease:
        key = pool_key(backend, p, procs)
        if key is None:
            return PoolLease(self, None, None)
        with self._lock:
            shelf = self._idle.get(key)
            if shelf:
                pool = shelf.pop()
                self.hits += 1
                if self._metrics is not None:
                    self._metrics.record_pool_event("hit")
                if isinstance(pool, SpmdPool):
                    pool.lease()
                return PoolLease(self, key, pool)
            self.misses += 1
            if self._metrics is not None:
                self._metrics.record_pool_event("miss")
        # creation happens outside the lock: ProcPool spawn is slow
        if key[0] == "thread":
            return PoolLease(self, key, SpmdPool().lease())
        return PoolLease(self, key, ProcPool(key[2]))

    def _return(self, key: tuple, pool: Any) -> None:
        if isinstance(pool, ProcPool) and pool._broken:
            return  # a broken proc pool refuses further runs
        with self._lock:
            total_idle = sum(len(s) for s in self._idle.values())
            if total_idle >= self.max_pools:
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.record_pool_event("evict")
            else:
                self._idle.setdefault(key, []).append(pool)
                return
        _shutdown_pool(pool)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "idle": {"/".join(map(str, k)): len(v)
                         for k, v in sorted(self._idle.items())},
                "max_pools": self.max_pools,
            }

    def shutdown(self) -> None:
        """Shut down every idle pool (service close)."""
        with self._lock:
            pools = [pool for shelf in self._idle.values() for pool in shelf]
            self._idle.clear()
        for pool in pools:
            _shutdown_pool(pool)
