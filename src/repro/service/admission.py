"""Admission control: bounded queue depth + a memory-budget gate.

The engine enforces per-rank memory (`repro.machine.memory`) *inside* a
run — a single over-committed rank OOMs deterministically.  A service
hosting many concurrent worlds has a second failure mode the paper
never had: the *sum* of well-behaved jobs exhausting the host.  The
admission gate closes that hole with the same arithmetic the per-run
model uses (`repro.simfast.scaling._oom`): a job's modelled peak is

    peak_per_rank = shard_bytes + max_load * record_bytes

with ``max_load`` from the count-space load model when the workload has
one (`analytic_model_for` + `countspace_loads`) and a conservative
2x-skew assumption otherwise, clamped to the engine's enforced
capacity ``mem_factor * shard_bytes + shard_bytes`` (past that the run
OOMs before using more).  A job is admitted only while

    committed_bytes + estimate <= budget_bytes

where ``committed_bytes`` sums the estimates of every queued + running
job; otherwise the submitter gets a typed backpressure decision
(``over-budget``) instead of the host OOM-ing mid-run.  Decisions are
deterministic in the submission order — the same stream of specs
always draws the same admit/reject sequence.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Any

from ..simfast import countspace_loads
from ..simfast.scaling import analytic_model_for
from .spec import JobSpec

#: Typed decision codes (``AdmissionDecision.code``).
ADMISSION_CODES = ("admitted", "queue-full", "over-budget", "draining",
                   "invalid")

#: Default service memory budget: 4 GiB of modelled engine peak.
DEFAULT_MEM_BUDGET = 4 << 30

#: Default bound on jobs waiting in the queue (running jobs excluded).
DEFAULT_QUEUE_DEPTH = 64

#: Skew assumption for workloads without a count-space model: the
#: heaviest rank holds at most 2x the average (SDS-Sort's partition
#: bounds are far tighter; this errs on the safe side for admission).
FALLBACK_SKEW = 2.0


def estimate_job_bytes(spec: JobSpec) -> int:
    """Modelled peak engine memory of one job, summed over ranks.

    Uses the exact probe :func:`repro.runner.run_sort` uses for the
    record size (shard probe + 12 provenance bytes), the count-space
    load model for the heaviest rank, and the engine's enforced
    capacity as a ceiling.  The hybrid backend executes only a rank
    sample functionally, so its charge is that sample's, not ``p``'s.
    """
    workload = spec.build_workload()
    probe = workload.shard(max(1, min(spec.n_per_rank, 64)), spec.p, 0,
                           spec.seed)
    record_bytes = probe.record_bytes + 12
    shard = spec.n_per_rank * record_bytes

    model = analytic_model_for(workload)
    if model is not None and spec.p > 1 and spec.n_per_rank > 0:
        if spec.algorithm.startswith("hyksort"):
            method = "hyksort"  # histogram splitters: the OOM-prone one
        elif spec.algorithm == "sds-stable":
            method = "stable"
        else:
            method = "fast"
        loads = countspace_loads(model, spec.n_per_rank, spec.p,
                                 method=method, seed=spec.seed)
        max_load = int(loads.max())
    else:
        max_load = int(FALLBACK_SKEW * spec.n_per_rank)
    peak_per_rank = shard + max_load * record_bytes
    if spec.mem_factor is not None:
        # the engine OOMs the rank before it can use more than this
        capacity = int(spec.mem_factor * shard)
        peak_per_rank = min(peak_per_rank, shard + capacity)

    ranks_hosted = spec.p
    if spec.backend == "hybrid":
        # hybrid_scaling_point executes a deterministic sample of ~8
        # ranks; the analytic leg allocates count-space vectors only
        ranks_hosted = min(spec.p, 8)
    return ranks_hosted * peak_per_rank


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one admission check (wire-safe).

    ``admitted=False`` decisions are the backpressure response: ``code``
    says which gate refused (see :data:`ADMISSION_CODES`), ``reason``
    is the human-readable sentence, and the byte fields carry the
    arithmetic so a client can decide whether to shrink the job, wait,
    or route elsewhere.  ``headroom_bytes`` is the uncommitted budget
    at decision time (``budget - committed``; ``None`` without a
    budget) — together with ``estimated_bytes`` it reconstructs the
    over-budget inequality exactly.  The decision is frozen onto the
    job, so ``status``/``result`` responses replay the full arithmetic
    long after submit — post-hoc debugging works from the daemon
    protocol alone.
    """

    admitted: bool
    code: str
    reason: str
    estimated_bytes: int
    committed_bytes: int
    budget_bytes: int | None
    queue_depth: int
    max_queue_depth: int
    headroom_bytes: int | None = None

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


class AdmissionController:
    """Thread-safe gate tracking committed memory across jobs.

    :meth:`admit` atomically checks both gates and, on success, commits
    the job's estimate; :meth:`release` returns it when the job leaves
    the system (done, failed, cancelled, or timed out).  The queue
    depth is supplied by the caller (the service holds the submit lock,
    so depth cannot race the decision).
    """

    def __init__(self, *, max_queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 mem_budget_bytes: int | None = DEFAULT_MEM_BUDGET):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if mem_budget_bytes is not None and mem_budget_bytes < 1:
            raise ValueError("mem_budget_bytes must be None or >= 1")
        self.max_queue_depth = max_queue_depth
        self.mem_budget_bytes = mem_budget_bytes
        self._lock = threading.Lock()
        self._committed = 0
        self._in_flight = 0

    @property
    def committed_bytes(self) -> int:
        with self._lock:
            return self._committed

    def _decision(self, admitted: bool, code: str, reason: str,
                  estimate: int, queue_depth: int) -> AdmissionDecision:
        return AdmissionDecision(
            admitted=admitted, code=code, reason=reason,
            estimated_bytes=estimate, committed_bytes=self._committed,
            budget_bytes=self.mem_budget_bytes, queue_depth=queue_depth,
            max_queue_depth=self.max_queue_depth,
            headroom_bytes=(None if self.mem_budget_bytes is None
                            else self.mem_budget_bytes - self._committed))

    def admit(self, spec: JobSpec, *, queue_depth: int,
              draining: bool = False) -> AdmissionDecision:
        """Decide one submission; commits the estimate when admitted."""
        estimate = estimate_job_bytes(spec)
        with self._lock:
            if draining:
                return self._decision(
                    False, "draining",
                    "service is draining and no longer admits jobs",
                    estimate, queue_depth)
            if queue_depth >= self.max_queue_depth:
                return self._decision(
                    False, "queue-full",
                    f"queue depth {queue_depth} is at the bound "
                    f"{self.max_queue_depth}; retry after jobs drain",
                    estimate, queue_depth)
            budget = self.mem_budget_bytes
            if budget is not None and self._committed + estimate > budget:
                headroom = budget - self._committed
                return self._decision(
                    False, "over-budget",
                    f"job needs ~{estimate:,} B of modelled engine peak "
                    f"but only {headroom:,} B of the {budget:,} B budget "
                    f"is uncommitted; shrink the job or retry after "
                    f"{self._in_flight} in-flight job(s) release",
                    estimate, queue_depth)
            self._committed += estimate
            self._in_flight += 1
            return self._decision(
                True, "admitted",
                f"committed ~{estimate:,} B of {budget:,} B budget"
                if budget is not None else
                f"committed ~{estimate:,} B (no budget configured)",
                estimate, queue_depth)

    def release(self, decision: AdmissionDecision) -> None:
        """Return an admitted job's committed estimate to the budget."""
        if not decision.admitted:
            return
        with self._lock:
            self._committed -= decision.estimated_bytes
            self._in_flight -= 1
            if self._committed < 0 or self._in_flight < 0:
                raise RuntimeError("admission release without matching admit")

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "committed_bytes": self._committed,
                "in_flight": self._in_flight,
                "budget_bytes": self.mem_budget_bytes,
                "max_queue_depth": self.max_queue_depth,
            }
