"""Concurrent job scheduling with warm pools, drain, and timeouts.

:class:`SortService` is the long-lived object behind every front-end
(`sdssort serve`, `sdssort submit`, the in-process
:class:`~repro.service.client.ServiceClient`): it owns the
:class:`~repro.service.queue.JobQueue`, the
:class:`~repro.service.admission.AdmissionController`, the
:class:`~repro.service.pools.WarmPoolCache` and a fixed set of
:class:`Scheduler` worker threads that drain the queue concurrently.

Lifecycle (the drain state machine, see ``docs/service.md``)::

    ACCEPTING --drain()--> DRAINING --queue+running empty--> STOPPED

``drain`` stops admission immediately (submissions get a typed
``draining`` rejection), lets queued and running jobs finish, then
stops the workers; ``close`` additionally shuts the cached pools down.
Per-job timeouts cancel: expired queued jobs never start, and a
running job's deadline fires the job's cancel event, which the engine
turns into a ``RunCancelled`` abort (thread backend) — either way the
job lands in the ``timeout`` state and releases its admission budget.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Any

import logging

from ..runner import resolve_backend
from .admission import AdmissionController, AdmissionDecision
from .metrics import ServiceMetrics
from .pools import PoolLease, WarmPoolCache, make_cold_lease
from .queue import Job, JobQueue
from .slog import log_event, service_logger
from .spec import DEFAULT_PRIORITY, PRIORITIES, JobSpec, JobValidationError

#: Default scheduler concurrency (worker threads draining the queue).
DEFAULT_WORKERS = 2

_LOG = service_logger("service.scheduler")


class ServiceState(Enum):
    """The service lifecycle (transitions only move rightward)."""

    ACCEPTING = "accepting"
    DRAINING = "draining"
    STOPPED = "stopped"


class Scheduler(threading.Thread):
    """One worker draining the queue; runs jobs to completion."""

    def __init__(self, service: "SortService", index: int):
        super().__init__(name=f"sort-service-worker-{index}", daemon=True)
        self._service = service

    def run(self) -> None:
        svc = self._service
        while True:
            job = svc.queue.pop(timeout=0.05)
            if job is None:
                if svc._stop_workers.is_set():
                    return
                continue
            svc._execute(job)


class SortService:
    """The sort-as-a-service engine host.

    Parameters
    ----------
    workers:
        Concurrent jobs (scheduler threads).  Each runs its own leased
        pool, so concurrency never shares engine state across jobs.
    max_queue_depth, mem_budget_bytes:
        Admission bounds (see :class:`AdmissionController`); pass
        ``mem_budget_bytes=None`` to disable the memory gate.
    warm_pools:
        Reuse engine pools across same-shaped jobs (the cache).  Off,
        every job cold-starts a fresh pool — the benchmark baseline.
    max_pools:
        Idle-pool retention bound of the warm cache.
    telemetry:
        Keep a :class:`~repro.service.metrics.ServiceMetrics` (metric
        registry + cross-job cost rollup) updated through the job
        lifecycle and the engine boundary.  On by default — telemetry
        never touches result documents, so golden equivalence holds
        either way; ``False`` removes every hook (``self.metrics`` is
        ``None`` and the ``metrics`` op reports it as disabled).
    """

    def __init__(self, *, workers: int = DEFAULT_WORKERS,
                 max_queue_depth: int | None = None,
                 mem_budget_bytes: int | None = ...,  # type: ignore[assignment]
                 warm_pools: bool = True,
                 max_pools: int | None = None,
                 telemetry: bool = True):
        admission_kwargs: dict[str, Any] = {}
        if max_queue_depth is not None:
            admission_kwargs["max_queue_depth"] = max_queue_depth
        if mem_budget_bytes is not ...:
            admission_kwargs["mem_budget_bytes"] = mem_budget_bytes
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.metrics = ServiceMetrics() if telemetry else None
        self.queue = JobQueue()
        self.admission = AdmissionController(**admission_kwargs)
        self.pools = (WarmPoolCache(**({} if max_pools is None
                                       else {"max_pools": max_pools}),
                                    metrics=self.metrics)
                      if warm_pools else None)
        self.state = ServiceState.ACCEPTING
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()          # jobs dict + state + counters
        self._submit_lock = threading.Lock()   # serialises admission order
        self._seq = 0
        self._running = 0
        self._idle = threading.Condition(self._lock)
        self._stop_workers = threading.Event()
        self._counts = {"submitted": 0, "rejected": 0, "done": 0,
                        "failed": 0, "cancelled": 0, "timeout": 0}
        self._workers = [Scheduler(self, i) for i in range(workers)]
        for w in self._workers:
            w.start()

    # -- submission ---------------------------------------------------
    def submit(self, spec: JobSpec | dict[str, Any], *,
               priority: str = DEFAULT_PRIORITY,
               timeout_s: float | None = None) -> Job:
        """Admit one job (or reject it with a typed decision).

        Always returns a :class:`Job`: rejected submissions come back
        in the ``rejected`` state with ``job.admission`` (or
        ``job.error`` for validation failures) explaining why — the
        caller never has to catch anything to see backpressure.
        """
        if priority not in PRIORITIES:
            raise ValueError(f"unknown priority {priority!r}; "
                             f"options: {list(PRIORITIES)}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be None or > 0, "
                             f"got {timeout_s!r}")
        with self._submit_lock:
            with self._lock:
                self._seq += 1
                job = Job(id=f"j-{self._seq:06d}", spec=None,  # type: ignore
                          priority=priority, seq=self._seq,
                          timeout_s=timeout_s)
                self._jobs[job.id] = job
                self._counts["submitted"] += 1
                draining = self.state is not ServiceState.ACCEPTING
            if self.metrics is not None:
                self.metrics.job_submitted(priority)
            try:
                if isinstance(spec, dict):
                    spec = JobSpec.from_dict(spec)
                else:
                    spec.validate()
            except JobValidationError as exc:
                job.spec = spec if isinstance(spec, JobSpec) else JobSpec()
                self._reject(job, AdmissionDecision(
                    admitted=False, code="invalid", reason=str(exc),
                    estimated_bytes=0,
                    committed_bytes=self.admission.committed_bytes,
                    budget_bytes=self.admission.mem_budget_bytes,
                    queue_depth=self.queue.depth(),
                    max_queue_depth=self.admission.max_queue_depth,
                    headroom_bytes=(
                        None if self.admission.mem_budget_bytes is None
                        else self.admission.mem_budget_bytes
                        - self.admission.committed_bytes)))
                return job
            job.spec = spec
            decision = self.admission.admit(
                spec, queue_depth=self.queue.depth(), draining=draining)
            job.admission = decision
            if not decision.admitted:
                self._reject(job, decision)
                return job
            if self.metrics is not None:
                self.metrics.admission_decision(decision.code)
            self.queue.push(job)
            self._refresh_gauges()
            log_event(_LOG, "job_queued", job_id=job.id,
                      priority=priority, algorithm=spec.algorithm,
                      workload=spec.workload, backend=spec.backend,
                      p=spec.p, n_per_rank=spec.n_per_rank,
                      estimated_bytes=decision.estimated_bytes)
            return job

    def _reject(self, job: Job, decision: AdmissionDecision) -> None:
        job.admission = decision
        with self._lock:
            self._counts["rejected"] += 1
        job.finish("rejected", error=decision.reason)
        if self.metrics is not None:
            self.metrics.admission_decision(decision.code)
            self.metrics.job_finished(job, was_running=False)
        log_event(_LOG, "job_rejected", level=logging.WARNING,
                  job_id=job.id, priority=job.priority,
                  code=decision.code, reason=decision.reason,
                  estimated_bytes=decision.estimated_bytes,
                  headroom_bytes=decision.headroom_bytes)

    # -- execution (worker threads) -----------------------------------
    def _execute(self, job: Job) -> None:
        expired: tuple[str, str] | None = None
        with self._lock:
            if job.done_event.is_set():
                return  # cancel() finalised it between pop and here
            now = time.monotonic()
            if job.cancel_event.is_set():
                expired = ("cancelled", "cancelled while queued")
            elif job.deadline is not None and now >= job.deadline:
                expired = ("timeout", "expired in queue")
            else:
                job.status = "running"
                job.started_at = now
                self._running += 1
        if expired is not None:
            self._finalize(job, expired[0], error=expired[1])
            return
        if self.metrics is not None:
            self.metrics.job_started(job)
        self._refresh_gauges()
        log_event(_LOG, "job_started", job_id=job.id,
                  priority=job.priority, queue_ms=round(job.queue_ms, 3))

        resolved, _ = resolve_backend(job.spec.backend, job.spec.algorithm)
        lease: PoolLease
        if self.pools is not None:
            lease = self.pools.lease(resolved, job.spec.p, job.spec.procs)
        else:
            lease = make_cold_lease(resolved, job.spec.p, job.spec.procs)

        watchdog: threading.Timer | None = None
        if job.deadline is not None:
            def _fire() -> None:
                job.timed_out = True
                job.cancel_event.set()
            watchdog = threading.Timer(job.deadline - time.monotonic(), _fire)
            watchdog.daemon = True
            watchdog.start()

        try:
            result = job.spec.run(pool=lease.pool, cancel=job.cancel_event,
                                  metrics=self.metrics)
            job.result = result
            if self.metrics is not None and result.ok:
                report = result.extras.get("trace")
                if report is not None:
                    self.metrics.fold_job_trace(job.spec, report)
            if result.ok:
                status, error = "done", None
            elif job.timed_out:
                status, error = "timeout", result.failure
            elif job.cancel_event.is_set():
                status, error = "cancelled", result.failure
            else:
                status, error = "failed", result.failure
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            status, error = "failed", repr(exc)
        finally:
            if watchdog is not None:
                watchdog.cancel()
            lease.release()
        self._finalize(job, status, error=error, was_running=True)

    def _finalize(self, job: Job, status: str, *, error: str | None = None,
                  was_running: bool = False) -> None:
        """Move a job to a terminal state exactly once.

        Idempotent: a worker and a concurrent ``cancel`` may both reach
        here; only the first transition counts, finishes the job and
        releases its admission budget.
        """
        with self._lock:
            if was_running:
                self._running -= 1
                self._idle.notify_all()
            if job.done_event.is_set():
                self._refresh_gauges_locked()
                return
            self._counts[status] = self._counts.get(status, 0) + 1
            job.finish(status, error=error)
            self._idle.notify_all()
        if job.admission is not None:
            self.admission.release(job.admission)
        if self.metrics is not None:
            self.metrics.job_finished(job, was_running=was_running)
        self._refresh_gauges()
        log_event(_LOG, "job_finished",
                  level=(logging.INFO if status == "done"
                         else logging.WARNING),
                  job_id=job.id, status=status, priority=job.priority,
                  error=error, queue_ms=round(job.queue_ms, 3),
                  run_ms=round(job.run_ms, 3))

    def _refresh_gauges(self) -> None:
        """Re-derive the point-in-time gauges from the ground truth."""
        if self.metrics is None:
            return
        with self._lock:
            running = self._running
        self.metrics.update_queue_gauges(
            depth_by_class=self.queue.depth_by_class(), running=running,
            committed_bytes=self.admission.committed_bytes)

    def _refresh_gauges_locked(self) -> None:
        """Gauge refresh for call sites already holding ``_lock``."""
        if self.metrics is None:
            return
        self.metrics.update_queue_gauges(
            depth_by_class=self.queue.depth_by_class(),
            running=self._running,
            committed_bytes=self.admission.committed_bytes)

    # -- queries ------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        job = self.get(job_id)
        job.done_event.wait(timeout)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, or abort a running one in flight."""
        job = self.get(job_id)
        with self._lock:
            if job.terminal:
                return job
            queued = job.status == "queued"
            job.cancel_event.set()
        if queued:
            # reap immediately rather than waiting for a worker's pop
            self._finalize(job, "cancelled", error="cancelled while queued")
        return job

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counts = dict(self._counts)
            running = self._running
            state = self.state.value
        return {
            "state": state,
            "queued": self.queue.depth(),
            "running": running,
            "counts": counts,
            "admission": self.admission.stats(),
            "pools": self.pools.stats() if self.pools is not None
            else {"warm_pools": False},
            "telemetry": self.metrics is not None,
            # p50/p99 wall latency per priority class, from the
            # telemetry histograms (None with telemetry off)
            "latency": (self.metrics.latency_summary()
                        if self.metrics is not None else None),
        }

    # -- lifecycle ----------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight work, stop the workers.

        Returns ``True`` when the service fully drained (always, unless
        ``timeout`` expired first).  Idempotent.
        """
        with self._lock:
            if self.state is ServiceState.ACCEPTING:
                self.state = ServiceState.DRAINING
                log_event(_LOG, "draining",
                          queued=self.queue.depth(), running=self._running)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self.queue.depth() or self._running:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(0.05 if remaining is None
                                else min(0.05, remaining))
        self._stop_workers.set()
        self.queue.wake_all()
        for w in self._workers:
            w.join()
        stopped = False
        with self._lock:
            stopped = self.state is not ServiceState.STOPPED
            self.state = ServiceState.STOPPED
        self._refresh_gauges()
        if stopped:
            log_event(_LOG, "stopped", counts=dict(self._counts))
        return True

    def close(self) -> None:
        """Drain, then release every cached pool.  Idempotent."""
        self.drain()
        if self.pools is not None:
            self.pools.shutdown()

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
