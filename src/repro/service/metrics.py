"""Service telemetry: the metric catalog and the engine-boundary hooks.

:class:`ServiceMetrics` owns one :class:`~repro.obs.telemetry.
MetricsRegistry` and one :class:`~repro.obs.rollup.CostRollup` per
:class:`~repro.service.scheduler.SortService` and registers the whole
catalog up front (see ``docs/observability.md`` for the full table):

* job lifecycle — ``sdssort_jobs_submitted_total{priority}``,
  ``sdssort_jobs_total{state,priority}`` (terminal outcomes);
* admission — ``sdssort_admission_decisions_total{code}``, the
  ``sdssort_admission_committed_bytes`` gauge;
* queue — ``sdssort_queue_depth{priority}``, ``sdssort_jobs_running``,
  wall-latency histograms ``sdssort_queue_wait_ms{priority}`` /
  ``sdssort_run_ms{priority}`` (counts deterministic, sums wall clock);
* warm pools — ``sdssort_pool_events_total{event}``;
* engine boundary — ``sdssort_runs_total{algorithm,backend,outcome}``,
  ``sdssort_run_aborts_total{cause}``,
  ``sdssort_engine_worlds_total{backend}``,
  ``sdssort_engine_cancels_total``.

Fixed label domains (priorities, terminal states, admission codes,
pool events) are pre-materialised at zero so a snapshot's row set
never depends on which events happened to fire first — part of the
determinism contract.  The engine-facing hooks (:meth:`record_run`,
:meth:`record_world`) are duck-typed: ``run_sort``/``run_spmd`` accept
any object with those methods via their ``metrics=`` parameter and do
nothing when it is ``None`` (the tracer's zero-overhead idiom).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..obs.rollup import CostRollup
from ..obs.telemetry import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from .admission import ADMISSION_CODES
from .queue import TERMINAL_STATES
from .spec import PRIORITIES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.report import TraceReport
    from .queue import Job
    from .spec import JobSpec

__all__ = ["POOL_EVENTS", "RUN_OUTCOMES", "ServiceMetrics"]

#: Warm-pool cache events (``sdssort_pool_events_total{event}``).
POOL_EVENTS = ("hit", "miss", "evict")

#: Engine-run outcomes (``sdssort_runs_total{outcome}``).
RUN_OUTCOMES = ("ok", "oom", "cancelled", "failed")


class ServiceMetrics:
    """One service's registry + rollup, with typed recording methods."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.rollup = CostRollup()
        r = self.registry

        self.jobs_submitted = r.counter(
            "sdssort_jobs_submitted_total",
            "Jobs submitted, by priority class", labels=("priority",))
        self.jobs_total = r.counter(
            "sdssort_jobs_total",
            "Jobs reaching a terminal state, by state and priority",
            labels=("state", "priority"))
        self.admission_decisions = r.counter(
            "sdssort_admission_decisions_total",
            "Admission decisions, by typed code", labels=("code",))
        self.pool_events = r.counter(
            "sdssort_pool_events_total",
            "Warm-pool cache events (hit/miss/evict)", labels=("event",))
        self.runs = r.counter(
            "sdssort_runs_total",
            "Engine runs, by algorithm, resolved backend and outcome",
            labels=("algorithm", "backend", "outcome"))
        self.run_aborts = r.counter(
            "sdssort_run_aborts_total",
            "Engine-run aborts, by cause exception type",
            labels=("cause",))
        self.engine_worlds = r.counter(
            "sdssort_engine_worlds_total",
            "SPMD worlds launched, by executing backend",
            labels=("backend",))
        self.engine_cancels = r.counter(
            "sdssort_engine_cancels_total",
            "Mid-run cancellations the engine's watcher delivered")

        self.queue_depth = r.gauge(
            "sdssort_queue_depth",
            "Jobs waiting in the queue, by priority class",
            labels=("priority",))
        self.jobs_running = r.gauge(
            "sdssort_jobs_running", "Jobs currently executing")
        self.committed_bytes = r.gauge(
            "sdssort_admission_committed_bytes",
            "Modelled engine-peak bytes committed by queued+running jobs")

        self.queue_wait_ms = r.histogram(
            "sdssort_queue_wait_ms",
            "Wall milliseconds jobs waited before starting "
            "(counts deterministic, sum wall clock)",
            buckets=DEFAULT_LATENCY_BUCKETS_MS, labels=("priority",))
        self.run_wall_ms = r.histogram(
            "sdssort_run_ms",
            "Wall milliseconds jobs spent running "
            "(counts deterministic, sum wall clock)",
            buckets=DEFAULT_LATENCY_BUCKETS_MS, labels=("priority",))

        # pre-materialise every fixed label domain at zero: the row
        # set of a snapshot must not depend on event arrival order
        for priority in PRIORITIES:
            self.jobs_submitted.labels(priority=priority)
            self.queue_depth.labels(priority=priority)
            self.queue_wait_ms.labels(priority=priority)
            self.run_wall_ms.labels(priority=priority)
            for state in TERMINAL_STATES:
                self.jobs_total.labels(state=state, priority=priority)
        for code in ADMISSION_CODES:
            self.admission_decisions.labels(code=code)
        for event in POOL_EVENTS:
            self.pool_events.labels(event=event)
        self.engine_cancels.labels()
        self.jobs_running.set(0)
        self.committed_bytes.set(0)

    # -- scheduler-side hooks --------------------------------------
    def job_submitted(self, priority: str) -> None:
        self.jobs_submitted.labels(priority=priority).inc()

    def admission_decision(self, code: str) -> None:
        self.admission_decisions.labels(code=code).inc()

    def job_started(self, job: "Job") -> None:
        self.queue_wait_ms.labels(priority=job.priority).observe(
            job.queue_ms)

    def job_finished(self, job: "Job", *, was_running: bool) -> None:
        self.jobs_total.labels(state=job.status,
                               priority=job.priority).inc()
        if was_running:
            self.run_wall_ms.labels(priority=job.priority).observe(
                job.run_ms)

    def update_queue_gauges(self, *, depth_by_class: dict[str, int],
                            running: int, committed_bytes: int) -> None:
        for priority in PRIORITIES:
            self.queue_depth.labels(priority=priority).set(
                depth_by_class.get(priority, 0))
        self.jobs_running.set(running)
        self.committed_bytes.set(committed_bytes)

    def record_pool_event(self, event: str) -> None:
        self.pool_events.labels(event=event).inc()

    # -- engine-boundary hooks (duck-typed `metrics=` objects) -----
    def record_run(self, *, algorithm: str, backend: str, outcome: str,
                   cause: BaseException | None = None) -> None:
        """One ``run_sort`` finished: count it and its abort cause."""
        self.runs.labels(algorithm=algorithm, backend=backend,
                         outcome=outcome).inc()
        if cause is not None:
            self.run_aborts.labels(cause=type(cause).__name__).inc()

    def record_world(self, *, backend: str, p: int,
                     cancelled: bool = False) -> None:
        """One SPMD world launched inside the engine."""
        self.engine_worlds.labels(backend=backend).inc()
        if cancelled:
            self.engine_cancels.inc()

    # -- traced jobs ------------------------------------------------
    def fold_job_trace(self, spec: "JobSpec",
                       report: "TraceReport") -> None:
        self.rollup.fold(
            algorithm=spec.algorithm, workload=spec.workload,
            backend=spec.backend, p=spec.p,
            n_per_rank=spec.n_per_rank, seed=spec.seed,
            fault_seed=spec.fault_seed, report=report)

    # -- views -------------------------------------------------------
    def latency_summary(self) -> dict[str, Any]:
        """p50/p99 queue/run wall latency per priority class.

        Estimated from the histogram buckets (Prometheus
        ``histogram_quantile`` interpolation) — wall-clock values, so
        informational, never asserted.
        """
        out: dict[str, Any] = {}
        for priority in PRIORITIES:
            qw = self.queue_wait_ms.labels(priority=priority)
            rw = self.run_wall_ms.labels(priority=priority)
            out[priority] = {
                "queue_ms": {"count": qw.count,
                             "p50": round(qw.quantile(0.50), 3),
                             "p99": round(qw.quantile(0.99), 3)},
                "run_ms": {"count": rw.count,
                           "p50": round(rw.quantile(0.50), 3),
                           "p99": round(rw.quantile(0.99), 3)},
            }
        return out
