"""Out-of-core sorting extension (the paper's Section 5 contrast)."""

from .disk import SSD, DiskModel, SpillStore
from .extsort import ExternalStats, external_sort, triton_sort

__all__ = [
    "SSD",
    "DiskModel",
    "SpillStore",
    "ExternalStats",
    "external_sort",
    "triton_sort",
]
