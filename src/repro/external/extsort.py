"""Out-of-core sorting: external merge sort and a TritonSort-style
distributed disk-to-disk sort.

Two algorithms:

* :func:`external_sort` — single-rank external merge sort under a
  working-memory budget: read the input in memory-sized chunks, sort
  each, spill as a run, then k-way merge the runs streaming from disk.
* :func:`triton_sort` — the two-phase disk-to-disk architecture of
  TritonSort (Rasmussen et al., the paper's [22]): phase one routes
  records to their destination rank by value range (histogram-balanced
  cuts) and spills the received data in memory-sized sorted runs;
  phase two external-merges the local runs.  All-to-all traffic uses
  the same simulated network as the in-memory sorts; disk time comes
  from :class:`~repro.external.disk.DiskModel`.

The contrast the paper draws: when the data fits in memory, paying the
write-once/read-once disk round trip is strictly worse — the
``bench_ext_out_of_core.py`` bench quantifies the gap and finds the
memory ratio where out-of-core becomes necessary.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.histosel import histogram_refine
from ..core.partition import partition_classic
from ..core.pipeline import SortOutcome, local_delta
from ..mpi import Comm
from ..records import RecordBatch, kway_merge_batches, sort_batch
from .disk import DiskModel, SpillStore


@dataclass
class ExternalStats:
    """I/O accounting of one rank's out-of-core sort."""

    runs: int
    bytes_written: int
    bytes_read: int
    disk_time: float

    @property
    def io_amplification(self) -> float:
        """Disk bytes moved per input byte (2.0 for one spill pass)."""
        total = self.bytes_written + self.bytes_read
        return total / max(1, self.bytes_written or 1)


def _spill_sorted_runs(batch: RecordBatch, store: SpillStore,
                       mem_budget: int, comm: Comm) -> float:
    """Phase one of an external sort: chunk, sort, spill."""
    if mem_budget <= 0:
        raise ValueError("mem_budget must be positive")
    rb = max(1, batch.record_bytes)
    per_run = max(1, mem_budget // rb)
    t_disk = 0.0
    for start in range(0, len(batch), per_run):
        chunk = batch.slice(start, min(len(batch), start + per_run))
        run = sort_batch(chunk)
        comm.charge(comm.cost.sort_time(len(run), delta=local_delta(run.keys)))
        t_disk += store.spill(run)
    return t_disk


def external_sort(comm: Comm, batch: RecordBatch, *,
                  mem_budget: int, disk: DiskModel | None = None
                  ) -> tuple[RecordBatch, ExternalStats]:
    """Single-rank external merge sort under ``mem_budget`` bytes.

    Returns the sorted batch and I/O statistics; disk time is charged
    to the rank's virtual clock.
    """
    store = SpillStore(disk=disk or DiskModel())
    t_disk = _spill_sorted_runs(batch, store, mem_budget, comm)
    runs, t_read = store.read_back_all()
    t_disk += t_read
    out = kway_merge_batches(runs) if runs else batch.copy()
    comm.charge(comm.cost.merge_time(len(out), max(2, len(runs))))
    comm.charge(t_disk)
    stats = ExternalStats(
        runs=len(runs),
        bytes_written=store.bytes_written,
        bytes_read=store.bytes_read,
        disk_time=t_disk,
    )
    return out, stats


def triton_sort(comm: Comm, batch: RecordBatch, *,
                mem_budget: int, disk: DiskModel | None = None,
                splitter_tolerance: float = 0.05,
                partition_method: str = "histogram") -> SortOutcome:
    """Two-phase disk-to-disk distributed sort (TritonSort-style).

    Phase one: value-range routing (one all-to-all) with received data
    spilled to scratch in sorted runs; phase two: external merge of the
    local runs.  Collective call; returns this rank's slice.

    ``partition_method`` selects the router: ``"histogram"`` is
    TritonSort's (value-range cuts — duplicates concentrate on one
    rank's *disk*, amplifying the imbalance with seek time);
    ``"skew-aware"`` grafts SDS-Sort's sampling + duplicate-splitting
    partition onto the out-of-core pipeline, spreading the spill
    evenly — the cross-over of the two papers' ideas, measured in
    ``bench_ext_out_of_core.py``.
    """
    if partition_method not in ("histogram", "skew-aware"):
        raise ValueError("partition_method must be 'histogram' or 'skew-aware'")
    disk = disk or DiskModel()
    comm.mem.alloc(min(batch.nbytes, mem_budget))

    with comm.phase("local_sort"):
        # phase-one spill of the *input* as sorted runs doubles as the
        # sampling substrate: runs give cheap sorted access
        sortedb = sort_batch(batch)
        comm.charge(comm.cost.sort_time(len(batch),
                                        delta=local_delta(sortedb.keys)))

    with comm.phase("pivot_selection"):
        if partition_method == "histogram":
            splitters = histogram_refine(comm, sortedb.keys, comm.size - 1,
                                         tolerance=splitter_tolerance)
        else:
            from ..core.sampling import local_pivots, select_pivots_bitonic
            pl = local_pivots(sortedb.keys, comm.size)
            splitters = select_pivots_bitonic(comm, pl)

    with comm.phase("partition"):
        if partition_method == "histogram":
            displs = partition_classic(sortedb.keys, splitters)
        else:
            from ..core.partition import partition_fast
            displs = partition_fast(sortedb.keys, splitters)
        comm.charge(comm.cost.binary_search_time(len(batch),
                                                 max(1, comm.size - 1)))

    sends = sortedb.split([int(d) for d in displs])
    with comm.phase("exchange"):
        chunks = comm.alltoallv(sends)

    store = SpillStore(disk=disk)
    with comm.phase("spill"):
        t_disk = 0.0
        for c in chunks:
            if len(c) == 0:
                continue
            t_disk += _spill_sorted_runs(c, store, mem_budget, comm)
        comm.charge(t_disk)
        # received chunks leave memory once spilled
        comm.mem.free(sum(c.nbytes for c in chunks))

    with comm.phase("local_ordering"):
        runs, t_read = store.read_back_all()
        out = kway_merge_batches(runs) if runs else RecordBatch.empty_like(batch)
        comm.charge(comm.cost.merge_time(len(out), max(2, len(runs))))
        comm.charge(t_read)
        comm.mem.alloc(min(out.nbytes, mem_budget))

    return SortOutcome(
        batch=out,
        received=len(out),
        info={
            "runs": len(runs),
            "bytes_written": store.bytes_written,
            "bytes_read": store.bytes_read,
            "p_active": comm.size,
        },
    )
