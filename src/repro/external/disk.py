"""Disk model for the out-of-core sorting extension.

The paper's related work (Section 5) sets SDS-Sort apart from
*disk-based* sorters (TritonSort, NTOSort) that "mainly focus on
optimizing the I/O performance"; this subpackage implements a minimal
out-of-core substrate so that contrast can be measured instead of
cited.  :class:`DiskModel` prices sequential I/O and seeks;
:class:`SpillStore` is a rank's scratch space holding spilled runs
(functionally in RAM — this is a simulator — but every byte in and out
is charged disk time and tracked).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..records import RecordBatch


@dataclass(frozen=True)
class DiskModel:
    """Cost model of one rank's local scratch disk.

    Defaults approximate one data-centre HDD of the TritonSort era:
    ~90 MB/s streaming, ~8 ms per seek.  Swap for an SSD profile via
    ``with_overrides``-style construction.
    """

    read_bandwidth: float = 90e6
    write_bandwidth: float = 90e6
    seek_time: float = 8e-3

    def write_time(self, nbytes: int, *, seeks: int = 1) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return seeks * self.seek_time + nbytes / self.write_bandwidth

    def read_time(self, nbytes: int, *, seeks: int = 1) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return seeks * self.seek_time + nbytes / self.read_bandwidth


SSD = DiskModel(read_bandwidth=2.5e9, write_bandwidth=1.8e9, seek_time=6e-5)


@dataclass
class SpillStore:
    """A rank's spill directory: sorted runs written during phase one.

    Tracks bytes written/read and seeks so the bench can report the
    I/O amplification of out-of-core sorting (every record is written
    once and read once beyond the in-memory algorithm's work).
    """

    disk: DiskModel = field(default_factory=DiskModel)
    runs: list[RecordBatch] = field(default_factory=list)
    bytes_written: int = 0
    bytes_read: int = 0
    seeks: int = 0

    def spill(self, run: RecordBatch) -> float:
        """Write one sorted run; returns the charged disk time."""
        if not run.is_sorted():
            raise ValueError("spilled runs must be sorted")
        self.runs.append(run)
        self.bytes_written += run.nbytes
        self.seeks += 1
        return self.disk.write_time(run.nbytes)

    def read_back_all(self) -> tuple[list[RecordBatch], float]:
        """Stream every run back for merging; returns (runs, disk time)."""
        total = sum(r.nbytes for r in self.runs)
        self.bytes_read += total
        self.seeks += len(self.runs)
        t = sum(self.disk.read_time(r.nbytes) for r in self.runs)
        runs, self.runs = self.runs, []
        return runs, t

    @property
    def run_count(self) -> int:
        return len(self.runs)
