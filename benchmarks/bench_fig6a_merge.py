"""Figure 6a: shared-memory parallel merge, skew-aware vs sample-based.

Paper: merging growing volumes on one 24-core node; HykSort's
sample-based merge partition slows sharply on Zipf data (one core
inherits the duplicate run) while SDS-Sort's skew-aware partition is
flat across workloads.

Reproduced from the per-core merge-load distributions (functional) run
through the machine model, plus the raw load imbalance numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import shared_merge_loads
from repro.machine import EDISON, CostModel
from repro.workloads import uniform, zipf

from _helpers import emit, fmt_time

C = 24                    # cores per Edison node
SIZES = [1, 2, 4, 7]      # "GB" axis of the paper, scaled records below
REC_PER_GB = 200_000      # scaled: records standing in for 1 GB


def _merge_times(workload, skew_aware):
    cost = CostModel(EDISON)
    out = []
    for gb in SIZES:
        keys = workload.generate(gb * REC_PER_GB, seed=gb).keys
        stats = shared_merge_loads(keys, C, skew_aware=skew_aware)
        # scale model time back up to the paper's GB sizes
        scale = (gb * 2**30 / 4) / (gb * REC_PER_GB)
        t = max(cost.merge_time(m, C) for m in stats.core_loads) * scale
        out.append((gb, t, max(stats.core_loads) / (len(keys) / C)))
    return out


def test_fig6a_merge(benchmark):
    def compute():
        return {
            ("sds", "uniform"): _merge_times(uniform(), True),
            ("sds", "zipf"): _merge_times(zipf(1.0), True),
            ("hyk", "uniform"): _merge_times(uniform(), False),
            ("hyk", "zipf"): _merge_times(zipf(1.0), False),
        }

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'GB':>4s} {'SDS+Uni(s)':>11s} {'SDS+Zipf(s)':>12s} "
            f"{'Hyk+Uni(s)':>11s} {'Hyk+Zipf(s)':>12s}"]
    for i, gb in enumerate(SIZES):
        rows.append(
            f"{gb:>4d} {fmt_time(res[('sds', 'uniform')][i][1]):>11s} "
            f"{fmt_time(res[('sds', 'zipf')][i][1]):>12s} "
            f"{fmt_time(res[('hyk', 'uniform')][i][1]):>11s} "
            f"{fmt_time(res[('hyk', 'zipf')][i][1]):>12s}"
        )
    emit("fig6a_merge", rows)

    for i in range(len(SIZES)):
        # skew-aware merging is flat across workloads...
        sds_uni, sds_zipf = res[("sds", "uniform")][i][1], res[("sds", "zipf")][i][1]
        assert sds_zipf == pytest.approx(sds_uni, rel=0.5)
        # ...while the sample-based merge degrades on Zipf
        hyk_zipf = res[("hyk", "zipf")][i][1]
        assert hyk_zipf > 1.5 * sds_zipf

    # core-load imbalance is the mechanism
    assert res[("hyk", "zipf")][-1][2] > 2.0     # one core overloaded
    assert res[("sds", "zipf")][-1][2] < 2.0

    benchmark.extra_info["mechanism"] = "per-core merge load imbalance"


def test_fig6a_real_merge_timing(benchmark):
    """Real wall time of the balanced vs imbalanced c-way merge."""
    from repro.kernels import kway_merge

    rng = np.random.default_rng(0)
    n = 1 << 18
    keys = np.concatenate([np.full(n // 2, 0.5), rng.random(n // 2)])
    rng.shuffle(keys)

    balanced = shared_merge_loads(keys, 8, skew_aware=True)
    naive = shared_merge_loads(keys, 8, skew_aware=False)
    assert max(balanced.core_loads) < max(naive.core_loads)

    chunks = [np.sort(c) for c in np.array_split(keys, 8)]
    benchmark(lambda: kway_merge(chunks))
