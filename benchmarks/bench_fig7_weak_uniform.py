"""Figure 7: weak scaling on the Uniform workload, 0.5K-128K cores.

Paper: 400 MB/process; at 128K cores SDS-Sort takes 28.25 s
(111 TB/min), HykSort 42.6 s (73.8 TB/min, SDS 51% faster), and
SDS-Sort/stable ~2x SDS (54 TB/min).

Two-level reproduction: the calibrated phase-time model across the full
0.5K-128K range (using count-space loads), anchored by functional
thread-engine runs at p = 64 that exercise the identical code paths.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.runner import run_sort
from repro.simfast import UniverseModel, fmt_p, weak_scaling_series
from repro.workloads import uniform

from _helpers import (
    FUNC_N,
    FUNC_P,
    PAPER_N_PER_RANK,
    PAPER_P_LIST,
    emit,
    fmt_time,
    quick,
)

ALGS = ["sds", "sds-stable", "hyksort"]


def test_fig7_weak_scaling_uniform(benchmark):
    model = UniverseModel.uniform()

    def compute():
        return {
            alg: weak_scaling_series(alg, model, PAPER_N_PER_RANK,
                                     PAPER_P_LIST, machine=EDISON)
            for alg in ALGS
        }

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'p':>6s} {'SDS(s)':>9s} {'SDS/st(s)':>10s} {'HykSort(s)':>11s}"]
    for i, p in enumerate(PAPER_P_LIST):
        rows.append(
            f"{fmt_p(p):>6s} {fmt_time(series['sds'][i].total):>9s} "
            f"{fmt_time(series['sds-stable'][i].total):>10s} "
            f"{fmt_time(series['hyksort'][i].total):>11s}"
        )
    top = {alg: series[alg][-1] for alg in ALGS}
    rows.append("")
    rows.append("at 128K cores (paper: SDS 28.25 s / 111 TB/min, "
                "HykSort 42.6 s / 73.8 TB/min, stable 54 TB/min):")
    for alg in ALGS:
        rows.append(f"  {alg:10s} {fmt_time(top[alg].total):>8s} s  "
                    f"{top[alg].throughput_tb_min():7.1f} TB/min")
    speedup = top["hyksort"].total / top["sds"].total
    rows.append(f"  SDS vs HykSort at 128K: {(speedup - 1) * 100:.0f}% faster "
                f"(paper: ~51%)")
    emit("fig7_weak_uniform", rows)

    # shapes: SDS beats HykSort at scale, stable slower than fast,
    # every curve grows with p past the tau_o switch
    assert top["sds"].total < top["hyksort"].total
    assert speedup > 1.15
    assert top["sds-stable"].total > top["sds"].total
    for alg in ALGS:
        assert series[alg][-1].total > series[alg][3].total
    # headline throughput within a 2x band of the paper's 111 TB/min
    assert 55 < top["sds"].throughput_tb_min() < 250


def test_fig7_functional_anchor(benchmark):
    """Thread-engine runs at p=64 confirm the model's ordering."""
    p = 16 if quick() else FUNC_P

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, uniform(), n_per_rank=FUNC_N, p=p,
                                machine=EDISON, algo_opts=opts)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"functional engine, p={p}, n={FUNC_N}:"]
    for alg, r in res.items():
        rows.append(f"  {alg:10s} ok={r.ok} t={fmt_time(r.elapsed)}s "
                    f"rdfa={r.rdfa:.3f}")
    emit("fig7_functional_anchor", rows)

    assert all(r.ok for r in res.values())
    assert res["sds"].elapsed <= res["sds-stable"].elapsed
