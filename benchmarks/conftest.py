"""Bench collection setup: make _helpers importable, warn without -s."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
