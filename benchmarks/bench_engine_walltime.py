"""Engine wall-clock tracking: exact `sds_sort` worlds at p up to 1024.

Unlike the per-figure benches (which reproduce paper numbers in
*virtual* time), this one tracks the **host** wall-clock of the exact
thread engine itself — the quantity the fused-collective overhauls
optimise and the one that used to wall every ``bench_fig*`` sweep at
p >= 512.  Results land in ``BENCH_engine.json`` at the repo root
(checked in, so the perf trajectory is visible across PRs) and in
``benchmarks/out/engine_walltime.txt``.

Baselines recorded in the JSON:

* ``seed_issue`` — the seed engine as measured for ISSUE 1
  (0.48 s at p=256, 14.3 s at p=512);
* ``seed_host`` — the seed engine re-measured on this repo's reference
  host right before the PR-1 overhaul (same host as the ``after``
  numbers, so the speedup column compares like with like);
* ``pre_fusion`` — the PR-1 engine with the *unfused* synchronous /
  stable pipeline (per-rank ``split_for_sends`` + ``alltoallv`` +
  ``order_received``, stable layout via plain allgather), measured on
  the reference host right before the sync-exchange fusion.  The
  stable and forced-sync configurations compare against these.

Schema v2 adds the stable-mode and forced-sync configurations; the
original overlapped-path configs and their baselines are unchanged.
Schema v3 resolves algorithms through the :data:`repro.runner.ALGORITHMS`
spec registry and records rank 0's decision trace per configuration
(which exchange path ran, which local ordering, the node-merge verdict
— with the thresholds that decided them); v2 baselines carry over
unchanged.  Schema v4 adds the ``chaos`` section written by
``bench_chaos_overhead.py`` (fault/recovery overhead at p in
{256, 512}); both benches read-modify-write the file, preserving each
other's sections and all v3 baselines.  Schema v5 adds the
``trace_overhead`` section written by ``bench_trace_overhead.py``
(host cost of the observability hooks, tracing off vs on); all v4
sections and baselines carry over unchanged.  Schema v6 adds the
``backend_scaling`` section written by ``bench_backend_scaling.py``
(thread vs proc wall-clock at p in {1Ki, 4Ki, 16Ki}, hybrid points at
64Ki/128Ki); all v5 sections carry over unchanged.  Schema v9 adds the
``service_throughput`` section written by
``bench_service_throughput.py`` (jobs/min and latency percentiles
through the sort service, warm vs cold engine pools); all prior
sections carry over unchanged.

Run directly (``python benchmarks/bench_engine_walltime.py``) or via
pytest.  ``REPRO_BENCH_QUICK`` drops the p=1024 point.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.machine import EDISON
from repro.mpi import run_spmd
from repro.records import tag_provenance
from repro.runner import ALGORITHMS
from repro.workloads import uniform

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, fmt_time, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"

#: (name, algorithm, p, records/rank, algo_opts).  The first four are
#: the ISSUE-1 tracked configurations (overlapped exchange); the next
#: three exercise the synchronous/stable pipeline fused in PR 2.  The
#: algorithm resolves through the :data:`repro.runner.ALGORITHMS` spec
#: registry, exactly as ``run_sort`` and the CLI do.
CONFIGS = [
    ("p64_n2000", "sds", 64, 2000, {}),
    ("p256_n2000", "sds", 256, 2000, {}),
    ("p512_n2000", "sds", 512, 2000, {}),
    ("p1024_n1000", "sds", 1024, 1000, {}),
    ("p256_n2000_stable", "sds", 256, 2000, {"stable": True}),
    ("p512_n2000_stable", "sds", 512, 2000, {"stable": True}),
    ("p512_n2000_sync", "sds", 512, 2000, {"tau_o": 0}),
]

#: Seed-engine wall seconds on this repo's reference host (1-vCPU VM),
#: measured immediately before the PR-1 fused-collective overhaul.
SEED_HOST = {"p64_n2000": 0.342, "p256_n2000": 6.954,
             "p512_n2000": 46.555, "p1024_n1000": 56.32}

#: Seed numbers quoted by ISSUE 1 (different host).
SEED_ISSUE = {"p256_n2000": 0.48, "p512_n2000": 14.3}

#: PR-1 engine, unfused sync/stable pipeline, reference host, best of 2
#: — measured immediately before the sync-exchange fusion.
PRE_FUSION = {"p256_n2000_stable": 0.8093, "p512_n2000_stable": 3.1532,
              "p512_n2000_sync": 2.8366}


def _prog(comm, algo, n, opts):
    shard = uniform().shard(n, comm.size, comm.rank, 0)
    shard = tag_provenance(shard, comm.rank)
    out = ALGORITHMS[algo].invoke(comm, shard,
                                  {"node_merge_enabled": False, **opts})
    decisions = out.info.get("decisions") if comm.rank == 0 else None
    return len(out.batch), decisions


def measure(reps: int = 2) -> dict:
    """Best-of-``reps`` wall seconds per configuration."""
    runs = {}
    configs = [c for c in CONFIGS if not (quick() and c[2] >= 1024)]
    for name, algo, p, n, opts in configs:
        best = float("inf")
        decisions = None
        for _ in range(reps):
            t0 = time.perf_counter()
            res = run_spmd(_prog, p, machine=EDISON, args=(algo, n, opts))
            best = min(best, time.perf_counter() - t0)
            assert res.ok and sum(r[0] for r in res.results) == p * n
            decisions = res.results[0][1]
        runs[name] = {"algorithm": algo, "p": p, "n_per_rank": n,
                      "params": opts, "wall_seconds": round(best, 4),
                      "decisions": decisions}
    return runs


def write_report(runs: dict) -> list[str]:
    rows = [f"{'config':>18s} {'base(s)':>9s} {'now(s)':>8s} {'speedup':>8s}"]
    for name, r in runs.items():
        base = SEED_HOST.get(name) or PRE_FUSION.get(name)
        r["baseline_seconds"] = base
        r["baseline"] = ("seed_host" if name in SEED_HOST
                         else "pre_fusion" if name in PRE_FUSION else None)
        r["speedup_vs_baseline"] = (round(base / r["wall_seconds"], 1)
                                    if base else None)
        rows.append(f"{name:>18s} {fmt_time(base) if base else '-':>9s} "
                    f"{fmt_time(r['wall_seconds']):>8s} "
                    f"{str(r['speedup_vs_baseline']) + 'x' if base else '-':>8s}")
    # read-modify-write: bench_chaos_overhead.py owns the "chaos"
    # section and bench_trace_overhead.py the "trace_overhead" section
    # of the same file; every bench preserves the others'
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    payload = {
        "schema": "bench_engine_walltime/v10",
        "machine": "EDISON cost model, uniform workload, node_merge off",
        "seed_issue": SEED_ISSUE,
        "seed_host": SEED_HOST,
        "pre_fusion": PRE_FUSION,
        "runs": runs,
    }
    for section in ("chaos", "trace_overhead", "backend_scaling",
                    "service_throughput"):
        if section in existing:
            payload[section] = existing[section]
    JSON_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    return rows


def test_engine_walltime():
    runs = measure()
    rows = write_report(runs)
    emit("engine_walltime", rows)
    # generous budgets: the ISSUE's acceptance numbers with headroom for
    # slow CI hosts (the engine beats them by an order of magnitude on
    # the reference host)
    assert runs["p256_n2000"]["wall_seconds"] < 60.0
    if "p512_n2000" in runs:
        assert runs["p512_n2000"]["wall_seconds"] < SEED_HOST["p512_n2000"] / 5
    if "p1024_n1000" in runs:
        assert runs["p1024_n1000"]["wall_seconds"] < 5.0
    # fusion acceptance: fused sync/stable pipeline at p=512 was
    # measured >= 5x the unfused pipeline on the reference host; the
    # regression gate keeps headroom like the budgets above (the same
    # host measures 4.5-5.7x depending on its mood — the unfused
    # pipeline is 1.0x, so 4x still proves the fusion is intact)
    if "p512_n2000_stable" in runs:
        assert (runs["p512_n2000_stable"]["wall_seconds"]
                < PRE_FUSION["p512_n2000_stable"] / 4)


if __name__ == "__main__":
    test_engine_walltime()
    print(f"wrote {JSON_PATH}")
