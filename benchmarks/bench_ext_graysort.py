"""Extension: sort-benchmark.org style records (paper future work).

The conclusion plans "more tests with well-known sorting benchmarks";
GraySort-style records (10-byte uniform keys, 90-byte opaque payload,
~100 bytes/record) are the canonical one.  Wide payloads shift the
balance toward the exchange: keys are cheap to compare but every record
drags 96 bytes through the network — throughput in TB/min rises even as
records/second falls.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.runner import run_sort
from repro.simfast import UniverseModel, weak_scaling_point
from repro.workloads import graysort

from _helpers import emit, fmt_time, quick


def test_ext_graysort_functional(benchmark):
    p = 8 if quick() else 32

    def compute():
        out = {}
        for alg in ("sds", "sds-stable", "hyksort", "radix"):
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, graysort(), n_per_rank=800, p=p,
                                machine=EDISON, algo_opts=opts, seed=6)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"graysort records (96 B), functional p={p}:"]
    for alg, r in res.items():
        rows.append(f"  {alg:10s} ok={r.ok} t={fmt_time(r.elapsed)}s "
                    f"rdfa={r.rdfa:.3f}")
    emit("ext_graysort_functional", rows)
    assert all(r.ok for r in res.values())
    # distinct uniform keys: everyone balances
    for r in res.values():
        assert r.rdfa < 1.5


def test_ext_graysort_payload_shifts_balance(benchmark):
    """Model at paper scale: with 96-byte records the exchange term
    dominates where the 4-byte-record runs were sort-bound."""
    model = UniverseModel.uniform()

    def compute():
        thin = weak_scaling_point("sds", model, 100_000_000, 8192,
                                  machine=EDISON, record_bytes=4)
        # same record *count* per rank, 24x wider records
        wide = weak_scaling_point("sds", model, 100_000_000, 8192,
                                  machine=EDISON, record_bytes=96)
        return thin, wide

    thin, wide = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        "SDS at p=8192, 1e8 records/rank:",
        f"  4 B records: total={thin.total:6.2f}s exchange={thin.exchange:6.2f}s"
        f"  ({thin.throughput_tb_min():7.1f} TB/min)",
        f"  96 B records: total={wide.total:6.2f}s exchange={wide.exchange:6.2f}s"
        f"  ({wide.throughput_tb_min():7.1f} TB/min)",
    ]
    emit("ext_graysort_model", rows)
    # wide records: more absolute time, higher byte-throughput, and the
    # exchange share grows sharply
    assert wide.total > thin.total
    assert wide.throughput_tb_min() > thin.throughput_tb_min()
    assert wide.exchange / wide.total > 2 * (thin.exchange / thin.total)
