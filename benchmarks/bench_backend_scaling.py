"""Backend scaling: thread ceiling, proc crossover, flat wall, hybrid giant-p.

Tracks the host wall-clock of full functional `sds` runs through
``run_sort`` on the functional backends, and the hybrid backend's
modelled points with their validation evidence.  On the 1-core
reference host thread and proc are at parity through a few Ki ranks
(both are bound by the same per-collective thread wakeups; the proc
backend's IPC stays in the noise).  The thread backend's GIL traffic
becomes the bottleneck at p=16Ki: the proc run completes in ~23 min
while the thread run was capped still running at 95 min
(:data:`THREAD_16KI_FLOOR`).  The columnar **flat** backend removes
thread hosting altogether and turns the same p=16Ki world into ~2 s
(hundreds of times faster than the recorded proc wall,
:data:`PROC_16KI_RECORDED`) and an exact p=64Ki world into seconds —
the point past every threaded ceiling where the functional
reproduction still runs whole.  Beyond that, the hybrid backend
covers p = 64Ki / 128Ki analytically with a sampled functional leg.

Since the World refactor every registered algorithm runs columnar, so
the flat series carries a PSRS leg next to the SDS one — the
fixed-strategy baseline rides the same engine wall-free (schema v8
adds the ``*_flat_psrs`` points; all prior sections are preserved).

Results land in the ``backend_scaling`` section of
``BENCH_engine.json`` (schema v8).  This bench and the other
``bench_engine_walltime``-family benches read-modify-write the file,
each preserving the others' sections; within ``backend_scaling`` the
measured runs merge over the recorded ones, so skipping the
tens-of-minutes proc/thread points keeps their recorded entries.

Wall times are best-of-2 per configuration, so proc numbers reflect a
warm ``ProcPool`` (the first repetition pays the one-time spawn).
``REPRO_BENCH_QUICK`` keeps only the p=1024 functional pair, the flat
series to p=16Ki and the p=64Ki hybrid point;
``REPRO_BENCH_FLAT_ONLY`` measures just the flat series (minutes, not
hours — the slow proc points keep their recorded values).  Run
directly or via pytest; direct runs need the ``__main__`` guard below
(the proc backend spawns workers, and spawn re-imports ``__main__``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.runner import run_sort
from repro.workloads import by_name

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, fmt_time, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"
SCHEMA = "bench_engine_walltime/v10"

#: (name, p, n_per_rank, measure_thread, reps).  The p=16Ki proc point
#: runs once (a repetition costs tens of minutes: at that scale both
#: backends are dominated by waking 16Ki rank threads per collective
#: on the reference host's single core; the proc wall includes the
#: 8-worker pool spawn, a few seconds of it).  The thread backend at
#: p=16Ki is not re-measured per run: on the reference host it was
#: still running after 95 minutes when the measurement was capped
#: (:data:`THREAD_16KI_FLOOR`), > 4x the proc wall — one interpreter
#: hand-carrying 16Ki threads through every GIL switch loses to eight
#: interpreters carrying 2Ki each even on a single core.
FUNCTIONAL = [
    ("p1024", 1024, 64, True, 2),
    ("p4096", 4096, 64, True, 2),
    ("p16384", 16384, 64, False, 1),
]

#: Lower bound on the thread-backend wall at p=16Ki, n=64/rank on the
#: reference host (run capped after 95 min, like the SEED_HOST
#: baselines of bench_engine_walltime this is a recorded measurement,
#: not recomputed per run).
THREAD_16KI_FLOOR = 5700.0

#: Recorded proc-backend wall at p=16Ki, n=64/rank on the reference
#: host (the ~23 min measurement behind the v6 crossover claim).  Like
#: THREAD_16KI_FLOOR it is a recorded measurement, not recomputed per
#: run — the flat series quotes its speedup against it.
PROC_16KI_RECORDED = 1371.6474

#: Flat-backend points: (name, p, n_per_rank, reps).  All cheap — the
#: columnar engine runs p=16Ki in seconds, so every point re-measures
#: on every bench run.  p=64Ki is the headline: an exact functional
#: world at the paper's Fig-8 scale, on one host.
FLAT = [
    ("p1024_flat", 1024, 64, 2),
    ("p4096_flat", 4096, 64, 2),
    ("p16384_flat", 16384, 64, 2),
    ("p65536_flat", 65536, 64, 1),
]

#: Flat PSRS points: (name, p, n_per_rank, reps).  The world-form
#: refactor made every registered algorithm flat-eligible; the PSRS
#: series demonstrates a non-SDS pipeline riding the columnar engine
#: at thread-hostile scale.
FLAT_PSRS = [
    ("p1024_flat_psrs", 1024, 64, 2),
    ("p4096_flat_psrs", 4096, 64, 2),
    ("p16384_flat_psrs", 16384, 64, 1),
]

#: Hybrid points: (name, p, n_per_rank).
HYBRID = [
    ("p65536_hybrid", 65536, 2000),
    ("p131072_hybrid", 131072, 2000),
]


def flat_only() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FLAT_ONLY"))


def _wall(backend: str, p: int, n: int, reps: int = 2,
          algorithm: str = "sds"):
    wl = by_name("uniform")
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        r = run_sort(algorithm, wl, n_per_rank=n, p=p, mem_factor=None,
                     backend=backend)
        best = min(best, time.perf_counter() - t0)
        assert r.ok, (backend, algorithm, p, r.failure)
        result = r
    return round(best, 4), result


def measure() -> dict:
    runs = {}
    functional = [c for c in FUNCTIONAL
                  if not (quick() and c[1] > 1024) and not flat_only()]
    for name, p, n, with_thread, reps in functional:
        proc_wall, r = _wall("proc", p, n, reps=reps)
        entry = {"backend": "proc", "p": p, "n_per_rank": n,
                 "workers": r.extras["engine"]["workers"],
                 "wall_seconds": proc_wall,
                 "thread_wall_seconds": None,
                 "speedup_vs_thread": None}
        if with_thread:
            thread_wall, _ = _wall("thread", p, n, reps=reps)
            entry["thread_wall_seconds"] = thread_wall
            entry["speedup_vs_thread"] = round(thread_wall / proc_wall, 2)
        elif p == 16384:
            entry["thread_wall_floor_seconds"] = THREAD_16KI_FLOOR
            entry["speedup_vs_thread_floor"] = round(
                THREAD_16KI_FLOOR / proc_wall, 2)
        runs[name] = entry
    for name, p, n, reps in FLAT:
        flat_wall, r = _wall("flat", p, n, reps=reps)
        entry = {"backend": "flat", "p": p, "n_per_rank": n,
                 "wall_seconds": flat_wall,
                 "sim_seconds": round(r.elapsed, 6),
                 "rdfa": round(r.rdfa, 4)}
        if p == 16384:
            entry["proc_wall_recorded_seconds"] = PROC_16KI_RECORDED
            entry["speedup_vs_proc_recorded"] = round(
                PROC_16KI_RECORDED / flat_wall, 1)
            entry["thread_wall_floor_seconds"] = THREAD_16KI_FLOOR
            entry["speedup_vs_thread_floor"] = round(
                THREAD_16KI_FLOOR / flat_wall, 1)
        runs[name] = entry
    for name, p, n, reps in FLAT_PSRS:
        if quick() and p > 16384:
            continue
        flat_wall, r = _wall("flat", p, n, reps=reps, algorithm="psrs")
        runs[name] = {"backend": "flat", "algorithm": "psrs", "p": p,
                      "n_per_rank": n, "wall_seconds": flat_wall,
                      "sim_seconds": round(r.elapsed, 6),
                      "rdfa": round(r.rdfa, 4)}
    hybrid = [c for c in HYBRID
              if not (quick() and c[1] > 65536) and not flat_only()]
    for name, p, n in hybrid:
        t0 = time.perf_counter()
        r = run_sort("sds", by_name("zipf"), n_per_rank=n, p=p,
                     mem_factor=None, backend="hybrid")
        wall = round(time.perf_counter() - t0, 4)
        assert r.ok, (name, r.failure)
        hyb = r.extras["hybrid"]
        runs[name] = {"backend": "hybrid", "p": p, "n_per_rank": n,
                      "wall_seconds": wall,
                      "sim_seconds": round(r.elapsed, 6),
                      "throughput_tb_min": round(r.throughput_tb_min, 2),
                      "validated": bool(hyb["local_sort_ok"]
                                        and hyb["deterministic"]),
                      "max_load_rel_err": round(hyb["max_load_rel_err"], 4),
                      "rdfa_rel_err": round(hyb["rdfa_rel_err"], 4),
                      "sampled_ranks": hyb["sampled_ranks"]}
    return runs


def write_report(runs: dict) -> dict:
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    existing["schema"] = SCHEMA
    recorded = existing.get("backend_scaling", {}).get("runs", {})
    merged = {**recorded, **runs}  # unmeasured points keep their record
    existing["backend_scaling"] = {
        "machine": "EDISON cost model, uniform (functional) / zipf (hybrid)"
                   ", no memory limit",
        "host_cores": os.cpu_count(),
        "runs": merged,
    }
    JSON_PATH.write_text(json.dumps(existing, indent=1) + "\n")
    return merged


def report_rows(runs: dict) -> list[str]:
    rows = [f"{'config':>16s} {'backend':>8s} {'wall(s)':>9s} "
            f"{'baseline(s)':>12s} {'speedup':>9s}"]
    for name, r in runs.items():
        tw = r.get("thread_wall_seconds")
        sp = r.get("speedup_vs_thread")
        ft, fs = "", ""
        if "speedup_vs_proc_recorded" in r:
            tw = r["proc_wall_recorded_seconds"]
            sp = r["speedup_vs_proc_recorded"]
        elif tw is None and "thread_wall_floor_seconds" in r:
            tw = r["thread_wall_floor_seconds"]
            sp = r["speedup_vs_thread_floor"]
            ft, fs = ">", ">"  # capped measurement, a floor
        rows.append(f"{name:>16s} {r['backend']:>8s} "
                    f"{fmt_time(r['wall_seconds']):>9s} "
                    f"{ft + fmt_time(tw) if tw else '-':>12s} "
                    f"{fs + str(sp) + 'x' if sp else '-':>9s}")
    return rows


def test_backend_scaling():
    runs = measure()
    merged = write_report(runs)
    emit("backend_scaling", report_rows(merged))
    # On a single-core host proc and thread are both bound by the same
    # per-collective wakeups up to a few Ki ranks — the contract there
    # is parity (IPC overhead must stay in the noise).  The outright
    # win appears where the single interpreter's GIL traffic becomes
    # the bottleneck: p=16Ki proc completes in ~23 min against a
    # capped >95 min thread run (THREAD_16KI_FLOOR).  Multi-core hosts
    # move the crossover down — host_cores is recorded for that.
    if "p1024" in runs:
        assert (runs["p1024"]["wall_seconds"]
                < runs["p1024"]["thread_wall_seconds"] * 1.5)
    if "p4096" in runs:
        assert (runs["p4096"]["wall_seconds"]
                < runs["p4096"]["thread_wall_seconds"] * 1.25)
    if "p16384" in runs:
        assert runs["p16384"]["wall_seconds"] < THREAD_16KI_FLOOR
    # The flat backend's acceptance bar: >= 5x over the recorded proc
    # wall at p=16Ki (it lands orders of magnitude past that), and the
    # p=64Ki exact world must complete.
    assert (runs["p16384_flat"]["wall_seconds"]
            < PROC_16KI_RECORDED / 5.0)
    assert runs["p65536_flat"]["sim_seconds"] > 0
    # PSRS rides the same columnar engine: its p=16Ki flat wall must
    # clear the recorded SDS proc wall by the same 5x bar.
    assert (runs["p16384_flat_psrs"]["wall_seconds"]
            < PROC_16KI_RECORDED / 5.0)
    for name, r in runs.items():
        if r["backend"] == "hybrid":
            assert r["validated"], name


if __name__ == "__main__":
    test_backend_scaling()
    print(f"wrote {JSON_PATH}")
