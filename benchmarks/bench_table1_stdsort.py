"""Table 1: sequential sort vs stable sort on uniform and Zipf data.

Paper: sorting 1 GB (268M float32) with C++ ``std::sort`` /
``std::stable_sort``; stable is ~1.35x slower, and higher skew makes
both faster (26.1 s uniform -> 6.6 s at delta=63%).

Here the measurement is *real*: numpy's introsort and timsort on a
scaled-down array (the effect is rate-like, so the ratios carry), plus
the calibrated model's view at full 268M-record scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.machine import EDISON, CostModel
from repro.workloads import zipf_batch, zipf_delta

from _helpers import emit, fmt_time

#: Scaled-down measurement size (the paper uses 268M).
N = 2**22
ALPHAS = [0.7, 1.4, 2.1]


def _datasets():
    rng = np.random.default_rng(42)
    data = {"uniform": rng.random(N, dtype=np.float64)}
    for a in ALPHAS:
        data[f"zipf-{a}"] = zipf_batch(N, np.random.default_rng(7), alpha=a).keys
    return data


def _measure(arr: np.ndarray, kind: str) -> float:
    best = float("inf")
    for _ in range(5):  # min-of-5: robust to background load
        a = arr.copy()
        t0 = time.perf_counter()
        a.sort(kind=kind)
        best = min(best, time.perf_counter() - t0)
    return best


def test_table1_stdsort(benchmark):
    data = _datasets()
    rows = [f"{'dataset':12s} {'sort(s)':>10s} {'stable(s)':>10s} "
            f"{'stable/sort':>12s}  (measured, n={N})"]
    measured = {}
    for name, arr in data.items():
        ts = _measure(arr, "quicksort")
        tss = _measure(arr, "stable")
        measured[name] = (ts, tss)
        rows.append(f"{name:12s} {fmt_time(ts):>10s} {fmt_time(tss):>10s} "
                    f"{tss / ts:>12.2f}")

    cost = CostModel(EDISON)
    rows.append("")
    rows.append(f"{'dataset':12s} {'model sort(s) @268M':>20s}   (paper: "
                f"26.1 / 14.6 / 8.9 / 6.6)")
    for name in data:
        delta = 0.0 if name == "uniform" else zipf_delta(float(name.split("-")[1]))
        rows.append(f"{name:12s} {fmt_time(cost.sort_time(268_000_000, delta=delta)):>20s}")
    emit("table1_stdsort", rows)

    # paper shape 1: stable sort is slower everywhere
    for name, (ts, tss) in measured.items():
        assert tss > ts, f"stable sort should be slower on {name}"
    # paper shape 2: skew speeds sorting up with alpha (5% slack on the
    # mildest point: wall-clock under co-running load is noisy)
    uni = measured["uniform"][0]
    zs = [measured[f"zipf-{a}"][0] for a in ALPHAS]
    assert zs[0] < uni * 1.05
    assert zs[2] < zs[0]
    assert zs[2] < 0.8 * uni

    benchmark(lambda: np.sort(data["uniform"], kind="quicksort"))


def test_table1_stable_benchmark(benchmark):
    rng = np.random.default_rng(0)
    arr = rng.random(N)
    benchmark(lambda: np.sort(arr, kind="stable"))


@pytest.mark.parametrize("alpha", ALPHAS)
def test_table1_zipf_benchmark(benchmark, alpha):
    arr = zipf_batch(N, np.random.default_rng(7), alpha=alpha).keys
    benchmark(lambda: np.sort(arr, kind="quicksort"))
