"""Extension: quantify the secondary-sort-key workaround (Section 4.1.2).

The paper: "Using external values or rank of replicated values to
distinct the replicated one can turn HykSort to allocate replicated
values among processes.  But, it requires extra overhead to store,
exchange, and process external values."  We implemented that variant
(``hyksort-sk``: composite (key, rank, position) keys) — this bench
measures the overhead SDS-Sort avoids while matching the balance.
"""

from __future__ import annotations

from repro.runner import run_sort
from repro.workloads import zipf

from _helpers import emit, fmt_rdfa, fmt_time, quick

ALGS = ["hyksort", "hyksort-sk", "sds", "sds-stable"]


def test_ext_secondary_key(benchmark):
    p = 16 if quick() else 64
    n = 1000

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, zipf(1.4), n_per_rank=n, p=p,
                                mem_factor=None, algo_opts=opts, seed=3)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"zipf(1.4) delta=32%, p={p}, memory uncapped:",
            f"{'algorithm':>12s} {'time(s)':>9s} {'RDFA':>10s} {'stable?':>8s}"]
    stable = {"hyksort": "no", "hyksort-sk": "yes", "sds": "no",
              "sds-stable": "yes"}
    for alg in ALGS:
        r = res[alg]
        rows.append(f"{alg:>12s} {fmt_time(r.elapsed):>9s} "
                    f"{fmt_rdfa(r.rdfa):>10s} {stable[alg]:>8s}")
    sk, sds = res["hyksort-sk"], res["sds"]
    rows.append("")
    rows.append(f"composite keys restore balance "
                f"({fmt_rdfa(res['hyksort'].rdfa)} -> {fmt_rdfa(sk.rdfa)}) "
                f"but cost {sk.elapsed / sds.elapsed:.1f}x SDS-Sort's time")
    emit("ext_secondary_key", rows)

    assert all(r.ok for r in res.values())
    # the workaround fixes the balance...
    assert sk.rdfa < 2.5 < res["hyksort"].rdfa
    # ...but the widened records cost real time vs both SDS variants
    assert sk.elapsed > sds.elapsed
    assert sk.elapsed > res["sds-stable"].elapsed
