"""Figure 6c: sorting skewed data across replication ratios.

Paper: delta in {0.2, 0.5, 1.0, 2.0, 3.7, 6.4}% (Table 2's alphas);
SDS-Sort and SDS-Sort/stable stay flat, HykSort only survives below
delta = 1.0% and then dies of load-imbalance OOM.

Functional reproduction on the thread engine.  The paper does not
state the process count; the OOM boundary sits where the duplicate
mass exceeds a rank's memory headroom (delta * p > mem_factor), so we
pick p = 1024 via the exact evaluator for the failure boundary and run
the full sorts at p = 64 for timing/shape.
"""

from __future__ import annotations


from repro.runner import MEM_FACTOR, run_sort
from repro.simfast import evaluate_loads
from repro.workloads import zipf

from _helpers import emit, fmt_rdfa, fmt_time, quick

ALPHAS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
N = 1000
#: OOM boundary sits at delta * p + 1 > mem_factor; p = 128 puts it
#: inside the sweep (between delta = 3.7% and 6.4%).
P = 128


def test_fig6c_delta_sweep(benchmark):
    p = 32 if quick() else P

    def compute():
        table = []
        for alpha in ALPHAS:
            wl = zipf(alpha)
            delta = wl.meta["delta"] * 100
            row = {"alpha": alpha, "delta": delta}
            for alg in ("sds", "sds-stable", "hyksort"):
                # scaled-down functional runs force the synchronous
                # exchange: overlap's benefit is a paper-scale effect
                # (the Fig 5b model), while its fixed per-peer overhead
                # would dominate these tiny shards
                opts = ({"node_merge_enabled": False, "tau_o": 0}
                        if alg.startswith("sds") else None)
                r = run_sort(alg, wl, n_per_rank=N, p=p,
                             algo_opts=opts, seed=2)
                row[alg] = r
            table.append(row)
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'delta%':>7s} {'SDS(s)':>9s} {'SDS/st(s)':>10s} "
            f"{'HykSort(s)':>11s} {'Hyk RDFA':>10s}"]
    for row in table:
        hyk = row["hyksort"]
        rows.append(
            f"{row['delta']:>7.2f} {fmt_time(row['sds'].elapsed):>9s} "
            f"{fmt_time(row['sds-stable'].elapsed):>10s} "
            f"{'OOM' if hyk.oom else fmt_time(hyk.elapsed):>11s} "
            f"{fmt_rdfa(hyk.rdfa):>10s}"
        )
    # failure boundary at the paper's scale, via the exact evaluator:
    # HykSort max-load factor vs the Edison memory headroom
    p_big = 1024
    boundary = []
    for alpha in ALPHAS:
        rep = evaluate_loads(zipf(alpha), 512, p_big, method="hyksort")
        factor = rep.max_over_avg
        boundary.append(
            f"  delta={zipf(alpha).meta['delta'] * 100:.2f}%  "
            f"hyk max-load = {factor:.1f} x N/p  "
            f"{'-> OOM' if 1 + factor > MEM_FACTOR else '-> fits'}"
        )
    rows.append("")
    rows.append(f"failure boundary at p={p_big} (capacity {MEM_FACTOR}x input):")
    rows.extend(boundary)
    emit("fig6c_delta_sweep", rows)

    # SDS variants always succeed and stay flat
    sds_times = [row["sds"].elapsed for row in table]
    assert all(row["sds"].ok and row["sds-stable"].ok for row in table)
    assert max(sds_times) < 2.5 * min(sds_times)
    # stable costs more than fast
    assert all(row["sds-stable"].elapsed >= row["sds"].elapsed
               for row in table)


def test_fig6c_hyksort_oom_boundary(benchmark):
    """At p=1024-scale loads, HykSort passes below ~1% duplicates and
    fails above — the paper's delta >= 1.0 failure line."""
    def compute():
        low = evaluate_loads(zipf(0.5), 512, 1024, method="hyksort")   # 0.5%
        high = evaluate_loads(zipf(0.6), 512, 1024, method="hyksort")  # 1.0%
        return low, high

    low, high = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert 1 + low.max_over_avg <= MEM_FACTOR
    assert 1 + high.max_over_avg > MEM_FACTOR
