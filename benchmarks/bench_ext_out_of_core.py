"""Extension: in-memory vs out-of-core sorting (Section 5 contrast).

The paper distinguishes itself from disk-to-disk sorters (TritonSort,
NTOSort): SDS-Sort assumes "enough memory to hold data in core".  This
bench measures what that assumption buys — the disk round trip of a
TritonSort-style two-phase sort against in-memory SDS-Sort on the same
simulated cluster, on HDD and SSD profiles — and reports the I/O
amplification (every byte written once and read once beyond the
in-memory algorithm's work).
"""

from __future__ import annotations

from repro.core import SdsParams, sds_sort
from repro.external import SSD, DiskModel, triton_sort
from repro.mpi import run_spmd
from repro.workloads import uniform

from _helpers import emit, fmt_time, quick

P = 16
N = 2000


def _run(kind: str, p: int, disk: DiskModel | None = None):
    def prog(comm):
        shard = uniform().shard(N, comm.size, comm.rank, 0)
        if kind == "memory":
            out = sds_sort(comm, shard, SdsParams(node_merge_enabled=False,
                                                  tau_o=0))
        else:
            out = triton_sort(comm, shard, mem_budget=N * 4,
                              disk=disk)  # ~4 runs per rank
        return out.info if kind != "memory" else {}, comm.clock
    res = run_spmd(prog, p)
    infos = [r[0] for r in res.results]
    return infos, max(r[1] for r in res.results)


def test_ext_out_of_core(benchmark):
    p = 8 if quick() else P

    def compute():
        _, t_mem = _run("memory", p)
        info_hdd, t_hdd = _run("disk", p, DiskModel())
        info_ssd, t_ssd = _run("disk", p, SSD)
        return t_mem, t_hdd, t_ssd, info_hdd[0]

    t_mem, t_hdd, t_ssd, info = benchmark.pedantic(compute, rounds=1,
                                                   iterations=1)
    amp = (info["bytes_written"] + info["bytes_read"]) / max(
        1, info["bytes_written"])
    rows = [
        f"uniform, p={p}, n={N}/rank, out-of-core budget = 4 runs/rank:",
        f"  in-memory SDS-Sort:        {fmt_time(t_mem)} s",
        f"  disk-to-disk (HDD model):  {fmt_time(t_hdd)} s "
        f"({t_hdd / t_mem:,.0f}x slower)",
        f"  disk-to-disk (SSD model):  {fmt_time(t_ssd)} s "
        f"({t_ssd / t_mem:,.0f}x slower)",
        f"  spill I/O amplification:   {amp:.1f}x "
        f"(each byte written then read back)",
    ]
    emit("ext_out_of_core", rows)

    # the paper's in-core assumption, quantified
    assert t_mem < t_ssd < t_hdd
    assert info["runs"] >= 2
    assert amp == 2.0
