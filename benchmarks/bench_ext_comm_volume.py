"""Extension: communication volume across algorithm families.

The paper's related-work claim (Section 5): non-sampling sorts like
bitonic "need a significant amount of communication and data exchange,
which are expensive operations on parallel systems", which is why the
PSS family (one all-to-all) wins on distributed memory.  The engine
counts every byte each algorithm actually moves — this bench turns the
claim into numbers: bitonic re-exchanges all data ``~log2(p)(log2(p)+1)/2``
times while samplesort-family algorithms move each record about once
(HykSort: once per k-way level).
"""

from __future__ import annotations

from repro.runner import run_sort
from repro.workloads import uniform

from _helpers import emit, quick

P = 16
N = 1000


def test_ext_comm_volume(benchmark):
    p = 8 if quick() else P

    def compute():
        out = {}
        for alg in ("sds", "psrs", "hyksort", "bitonic", "radix"):
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, uniform(), n_per_rank=N, p=p,
                                mem_factor=None, algo_opts=opts, seed=7)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    data_bytes = res["sds"].total_bytes
    rows = [f"uniform, p={p}, n={N}/rank; dataset = {data_bytes:,} B:",
            f"{'algorithm':>9s} {'bytes moved':>13s} {'x dataset':>10s}"]
    passes = {}
    for alg, r in res.items():
        moved = int(r.extras["bytes_sent"])
        passes[alg] = moved / data_bytes
        rows.append(f"{alg:>9s} {moved:>13,d} {passes[alg]:>10.2f}")
    emit("ext_comm_volume", rows)

    assert all(r.ok for r in res.values())
    # the PSS family moves each record about once (plus pivot traffic)
    assert passes["sds"] < 2.0
    assert passes["psrs"] < 2.0
    assert passes["radix"] < 2.0
    # bitonic re-exchanges everything per compare-exchange stage:
    # log2(16) phases -> 10 stages of full-volume sendrecv
    assert passes["bitonic"] > 5.0
    assert passes["bitonic"] > 3 * passes["sds"]
    # HykSort moves data once per level (p=16, k=128 -> one level)
    assert passes["hyksort"] < 2.5
