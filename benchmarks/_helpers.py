"""Shared utilities for the per-figure/table benches.

Every bench regenerates one table or figure of the paper: it computes
the experiment's data (functional simulation, count-space evaluation,
or analytic model — see DESIGN.md's per-experiment index), prints the
same rows/series the paper reports, asserts the qualitative shape
(who wins, where crossovers fall, what fails), and times its dominant
computation through pytest-benchmark.

Printed tables also land in ``benchmarks/out/<name>.txt`` so that
EXPERIMENTS.md can be assembled after a run without scraping pytest
output.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Paper weak-scaling shape: 400 MB (1e8 x 4-byte records) per process.
PAPER_N_PER_RANK = 100_000_000
PAPER_RECORD_BYTES = 4
PAPER_P_LIST = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072]

#: Functional (thread-engine) scale used alongside the models.
FUNC_P = 64
FUNC_N = 2000


def emit(name: str, lines: list[str]) -> None:
    """Print a table and persist it under benchmarks/out/."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_time(t: float) -> str:
    if math.isinf(t):
        return "inf"
    if t >= 100:
        return f"{t:.0f}"
    if t >= 1:
        return f"{t:.2f}"
    return f"{t:.4f}"


def fmt_rdfa(r: float) -> str:
    return "inf (OOM)" if math.isinf(r) else f"{r:.4f}"


def quick() -> bool:
    """Shrink functional scales when REPRO_BENCH_QUICK is set."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))
