"""Extension: adaptive local-ordering kernels head to head.

Section 2.7's premise — partially ordered data sorts faster than
``n log n`` — rests on [9] (patience-style sorting).  This bench races
the three local-ordering kernels on four input shapes with *real* wall
time: numpy introsort (the non-adaptive baseline), natural merge sort
(run-detecting), and the patience run sort.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.kernels import natural_merge_sort, patience_sort, run_pool_count

N = 1 << 15


def _inputs(rng):
    return {
        "sorted": np.arange(N, dtype=np.float64),
        "8-runs": np.concatenate([np.sort(rng.random(N // 8))
                                  for _ in range(8)]),
        "random": rng.random(N),
        "reverse": np.arange(N, dtype=np.float64)[::-1].copy(),
    }


def _best_of(fn, arr, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(arr)
        best = min(best, time.perf_counter() - t0)
    return best


def test_ext_patience_adaptivity(benchmark):
    from _helpers import emit

    rng = np.random.default_rng(0)
    data = _inputs(rng)

    def compute():
        table = {}
        for shape, arr in data.items():
            table[shape] = {
                "np.sort": _best_of(lambda a: np.sort(a), arr),
                "natural": _best_of(natural_merge_sort, arr),
                "patience": _best_of(patience_sort, arr),
                "runs": run_pool_count(arr),
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'input':>8s} {'np.sort(ms)':>12s} {'natural(ms)':>12s} "
            f"{'patience(ms)':>13s} {'run pool':>9s}"]
    for shape, r in table.items():
        rows.append(f"{shape:>8s} {r['np.sort'] * 1e3:>12.2f} "
                    f"{r['natural'] * 1e3:>12.2f} "
                    f"{r['patience'] * 1e3:>13.2f} {r['runs']:>9d}")
    emit("ext_patience", rows)

    # adaptivity: both adaptive kernels beat their own random-input
    # time on sorted input by a wide margin
    assert table["sorted"]["natural"] < table["random"]["natural"] / 3
    assert table["sorted"]["patience"] < table["random"]["patience"] / 3
    # on sorted input the adaptive kernels do ~O(n) work and are
    # competitive with (or beat) a full introsort
    assert table["sorted"]["natural"] < 3 * table["sorted"]["np.sort"]
    # run counts track disorder
    assert table["sorted"]["runs"] == 1
    assert table["reverse"]["runs"] == N


@pytest.mark.parametrize("shape", ["sorted", "8-runs", "random"])
def test_ext_patience_kernels(benchmark, shape):
    rng = np.random.default_rng(1)
    arr = _inputs(rng)[shape]
    benchmark(lambda: patience_sort(arr))
