"""Figure 5b: overlapping the exchange with local ordering vs not.

Paper: weak scaling at 400 MB/process; overlap wins below ~4096
processes, then the nonblocking progress overhead swamps the benefit.
tau_o is set at the crossover.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.simfast import crossover, fig5b_overlap, fmt_p

from _helpers import PAPER_N_PER_RANK, emit, fmt_time

PS = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]


def test_fig5b_overlap(benchmark):
    pts = benchmark(lambda: fig5b_overlap(EDISON, PS,
                                          n_per_rank=PAPER_N_PER_RANK))
    rows = [f"{'p':>6s} {'overlap(s)':>12s} {'no-overlap(s)':>14s}"]
    for pt in pts:
        rows.append(f"{fmt_p(int(pt.x)):>6s} {fmt_time(pt.a):>12s} "
                    f"{fmt_time(pt.b):>14s}")
    x = crossover(pts)
    rows.append(f"crossover (tau_o): {x:.0f} processes   (paper: ~4096)")
    emit("fig5b_overlap", rows)

    assert pts[0].a < pts[0].b       # overlap wins at 512
    assert pts[-1].a > pts[-1].b     # and loses at 64K
    assert x is not None and 2000 < x < 8000
    # both series grow with p (weak scaling)
    assert pts[-1].b > pts[0].b
