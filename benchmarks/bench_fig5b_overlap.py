"""Figure 5b: overlapping the exchange with local ordering vs not.

Paper: weak scaling at 400 MB/process; overlap wins below ~4096
processes, then the nonblocking progress overhead swamps the benefit.
tau_o is set at the crossover.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.runner import run_sort
from repro.simfast import crossover, fig5b_overlap, fmt_p
from repro.workloads import by_name

from _helpers import PAPER_N_PER_RANK, emit, fmt_time

PS = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]


def test_fig5b_overlap(benchmark):
    pts = benchmark(lambda: fig5b_overlap(EDISON, PS,
                                          n_per_rank=PAPER_N_PER_RANK))
    rows = [f"{'p':>6s} {'overlap(s)':>12s} {'no-overlap(s)':>14s}"]
    for pt in pts:
        rows.append(f"{fmt_p(int(pt.x)):>6s} {fmt_time(pt.a):>12s} "
                    f"{fmt_time(pt.b):>14s}")
    x = crossover(pts)
    rows.append(f"crossover (tau_o): {x:.0f} processes   (paper: ~4096)")
    emit("fig5b_overlap", rows)

    assert pts[0].a < pts[0].b       # overlap wins at 512
    assert pts[-1].a > pts[-1].b     # and loses at 64K
    assert x is not None and 2000 < x < 8000
    # both series grow with p (weak scaling)
    assert pts[-1].b > pts[0].b


def test_fig5b_traced_costsplit(benchmark):
    """Functional companion: the tracer's LogGP cost split for the
    overlapped vs synchronous exchange.  The two paths attribute the
    same makespan through different buckets — the sync path pays an
    explicit barrier wait (the zipf skew makes ranks arrive staggered),
    the overlapped path pays the nonblocking progress overhead in the
    latency bucket (the very term that swamps the benefit past tau_o)
    — and each split must reconcile with the engine's clocks."""
    wl = by_name("zipf", alpha=1.2)
    opts = {"node_merge_enabled": False}

    def run(tau_o=None):
        o = dict(opts) if tau_o is None else {**opts, "tau_o": tau_o}
        return run_sort("sds", wl, n_per_rank=500, p=32, mem_factor=None,
                        algo_opts=o, trace=True)

    ov = benchmark(lambda: run())        # p=32 < tau_o: overlapped
    sy = run(tau_o=0)                    # forced synchronous
    rows = [f"{'bucket':>12s} {'overlap(s)':>12s} {'sync(s)':>12s}"]
    splits = {}
    for label, r in (("overlap", ov), ("sync", sy)):
        rep = r.extras["trace"]
        rec = rep.reconcile()
        assert rec["max_cost_gap"] < 1e-9, (label, rec)
        # tracer-derived exchange column == engine's own
        assert abs(rep.phase_breakdown()["exchange"]
                   - r.phase_times["exchange"]) < 1e-12
        splits[label] = rep.cost_split()
    for bucket in sorted(splits["overlap"]):
        rows.append(f"{bucket[5:]:>12s} "
                    f"{fmt_time(splits['overlap'][bucket]):>12s} "
                    f"{fmt_time(splits['sync'][bucket]):>12s}")
    emit("fig5b_traced_costsplit", rows)

    # the synchronous path synchronises and pays measurable wait under
    # skew; the overlapped path instead pays the async progress
    # overhead, booked as latency — the term that grows with p and
    # sets the tau_o crossover
    assert splits["sync"]["cost.wait"] > 0.0
    assert splits["overlap"]["cost.latency"] > splits["sync"]["cost.latency"]
