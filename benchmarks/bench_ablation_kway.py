"""Ablation: k-way merge strategies (loser tree vs vectorised pairwise).

The cost model charges ``n log2(k)`` comparisons per k-way merge; the
LoserTree reference does exactly that count element-wise, while the
production path uses a balanced tree of vectorised two-way merges.
This bench verifies they agree and measures the (large) constant-factor
gap that justifies the vectorised default in a numpy codebase — the
Python-level analogue of the guides' "vectorise your inner loops".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import LoserTree, kway_merge

K = 16
N_VEC = 1 << 16     # per chunk, vectorised path
N_LOSER = 1 << 8    # per chunk, element-wise reference


def _chunks(n, k, seed=0):
    rng = np.random.default_rng(seed)
    return [np.sort(rng.random(n)) for _ in range(k)]


def test_ablation_strategies_agree(benchmark):
    chunks = _chunks(N_LOSER, K)
    got = benchmark.pedantic(lambda: LoserTree(chunks).drain(),
                             rounds=1, iterations=1)
    assert np.array_equal(got, kway_merge(chunks))


def test_ablation_vectorised_kway(benchmark):
    chunks = _chunks(N_VEC, K)
    out = benchmark(lambda: kway_merge(chunks))
    assert len(out) == N_VEC * K


def test_ablation_loser_tree(benchmark):
    chunks = _chunks(N_LOSER, K)
    out = benchmark(lambda: LoserTree(chunks).drain())
    assert len(out) == N_LOSER * K


@pytest.mark.parametrize("k", [2, 8, 64])
def test_ablation_kway_fanout(benchmark, k):
    """Wall time vs fan-out at constant total volume: the log2(k)
    growth the cost model assumes."""
    total = 1 << 17
    chunks = _chunks(total // k, k)
    benchmark(lambda: kway_merge(chunks))
