"""Figure 5a: all-to-all exchange with vs without node-level merging.

Paper: x = data per node (4 MB .. 4 GB); merging wins below ~160 MB
(amortised message overhead), loses above (a single rank cannot
saturate the Aries NIC).  tau_m is set at the crossover.

Regenerated from the calibrated Edison cost model; the functional
engine exercises the same decision through SdsParams.tau_m_bytes (see
tests/test_sdssort.py::TestNodeMerging).
"""

from __future__ import annotations

from repro.machine import EDISON, EDISON_SLOW_NET
from repro.runner import run_sort
from repro.simfast import crossover, fig5a_merging
from repro.workloads import by_name

from _helpers import emit, fmt_time

MB = 2**20
SIZES = [4, 16, 64, 128, 160, 192, 256, 512, 1024, 4096]


def test_fig5a_merging(benchmark):
    pts = benchmark(lambda: fig5a_merging(EDISON, [s * MB for s in SIZES]))
    rows = [f"{'data/node':>10s} {'merged(s)':>12s} {'unmerged(s)':>12s}"]
    for pt in pts:
        rows.append(f"{pt.x / MB:>8.0f}MB {fmt_time(pt.a):>12s} "
                    f"{fmt_time(pt.b):>12s}")
    x = crossover(pts)
    rows.append(f"crossover (tau_m): {x / MB:.0f} MB   (paper: ~160 MB)")
    emit("fig5a_merging", rows)

    # shape: merging wins only for small exchanges
    assert pts[0].a < pts[0].b          # 4 MB
    assert pts[-1].a > pts[-1].b        # 4 GB
    assert x is not None and 100 * MB < x < 250 * MB


def test_fig5a_slow_network_ablation(benchmark):
    """On a slow-network machine the crossover moves far right: node
    merging stays profitable much longer (the Section 2.3 motivation
    for making the choice adaptive rather than hard-coded)."""
    pts = benchmark(lambda: fig5a_merging(EDISON_SLOW_NET,
                                          [s * MB for s in SIZES]))
    x_slow = crossover(pts)
    x_fast = crossover(fig5a_merging(EDISON, [s * MB for s in SIZES]))
    emit("fig5a_slow_net_ablation", [
        f"edison crossover:   {x_fast / MB:.0f} MB",
        f"slow-net crossover: {'none (merging always wins)' if x_slow is None else f'{x_slow / MB:.0f} MB'}",
    ])
    assert x_slow is None or x_slow > x_fast


def test_fig5a_traced_breakdown(benchmark):
    """Functional companion: the exchange/node-merge columns derived
    from the tracer, node merging on vs off at 2 Edison nodes.  The
    per-node volume here (~100 KB) sits far left of the tau_m
    crossover, so merging must win, and the tracer's per-phase columns
    must agree with the engine's own phase accounting."""
    wl = by_name("uniform")

    def run(merge: bool):
        return run_sort("sds", wl, n_per_rank=500, p=48, mem_factor=None,
                        algo_opts={"node_merge_enabled": merge}, trace=True)

    on = benchmark(lambda: run(True))
    off = run(False)
    rows = [f"{'column':>16s} {'merged(s)':>12s} {'unmerged(s)':>12s}"]
    cols = {}
    for label, r in (("merged", on), ("unmerged", off)):
        bd = r.extras["trace"].phase_breakdown()
        # the tracer-derived columns are the engine's own, independently
        for name, t in bd.items():
            assert abs(t - r.phase_times.get(name, 0.0)) < 1e-12, name
        cols[label] = bd
    for name in ("exchange", "node_merge"):
        rows.append(f"{name:>16s} {fmt_time(cols['merged'].get(name, 0.0)):>12s} "
                    f"{fmt_time(cols['unmerged'].get(name, 0.0)):>12s}")
    emit("fig5a_traced_breakdown", rows)

    t_on = cols["merged"]["exchange"] + cols["merged"].get("node_merge", 0.0)
    t_off = cols["unmerged"]["exchange"] + cols["unmerged"].get("node_merge", 0.0)
    assert t_on < t_off        # small volume: left of the tau_m crossover
