"""Extension: strong scaling (fixed N, growing p) — paper future work.

The paper evaluates weak scaling only.  Strong scaling exposes the
serial floors: per-rank sorting shrinks with 1/p while pivot selection
and per-message overheads grow with p, so speedup saturates — and the
saturation point moves earlier for HykSort (per-level k-way exchanges)
than for SDS-Sort.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.simfast import UniverseModel, fmt_p, strong_scaling_series

from _helpers import emit, fmt_time

N_TOTAL = 512 * 100_000_000   # the paper's 512-rank weak-scaling dataset
PS = [512, 1024, 2048, 4096, 8192, 16384, 32768]


def test_ext_strong_scaling(benchmark):
    model = UniverseModel.uniform()

    def compute():
        return {
            alg: strong_scaling_series(alg, model, N_TOTAL, PS,
                                       machine=EDISON)
            for alg in ("sds", "hyksort")
        }

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'p':>6s} {'SDS(s)':>9s} {'speedup':>8s} {'HykSort(s)':>11s}"]
    base = series["sds"][0].total
    for i, p in enumerate(PS):
        sds_t = series["sds"][i].total
        rows.append(f"{fmt_p(p):>6s} {fmt_time(sds_t):>9s} "
                    f"{base / sds_t:>7.1f}x "
                    f"{fmt_time(series['hyksort'][i].total):>11s}")
    emit("ext_strong_scaling", rows)

    sds = [pt.total for pt in series["sds"]]
    # strong scaling helps at first...
    assert sds[1] < sds[0]
    assert sds[2] < sds[0] / 1.5
    # ...but the speedup is sub-linear by 64x more cores
    assert sds[0] / sds[-1] < PS[-1] / PS[0]
    # parallel efficiency decays monotonically past the early points
    eff = [sds[0] / (sds[i] * (PS[i] / PS[0])) for i in range(len(PS))]
    assert eff[-1] < eff[1]
