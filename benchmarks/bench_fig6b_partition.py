"""Figure 6b: partition cost — full scan vs HykSort vs local pivots.

Paper: with 2 GB per process, the local-pivot two-level binary search
partitions in "almost zero" time, the HykSort histogram partition sits
in between, and a sequential scan is by far the slowest, growing with
the process count that multiplies the ranges to locate.

This bench measures *real* wall time of the three partition kernels on
one shard — the asymptotic gap (O(n) vs O(p log n)) is hardware-free.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    local_pivots,
    partition_classic,
    partition_full_scan,
    partition_local_pivots,
)

from _helpers import emit

N = 1 << 22   # records per rank (the paper uses 2 GB ~ 5e8)
PS = [10, 100, 500]


def _setup(p):
    rng = np.random.default_rng(p)
    keys = np.sort(rng.random(N))
    pl = local_pivots(keys, p)
    pg = np.sort(rng.choice(keys, p - 1, replace=False))
    return keys, pl, pg


def _measure(fn, *args):
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_fig6b_partition_comparison(benchmark):
    def compute():
        out = {}
        for p in PS:
            keys, pl, pg = _setup(p)
            t_scan = _measure(partition_full_scan, keys, pg)
            # HykSort partitions against histogram splitters with plain
            # upper_bound searches over the full array
            t_hist = _measure(partition_classic, keys, pg)
            t_local = _measure(partition_local_pivots, keys, pl, pg)
            out[p] = (t_scan, t_hist, t_local)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'p':>5s} {'scan(ms)':>10s} {'histogram(ms)':>14s} "
            f"{'local-pivot(ms)':>16s}"]
    for p, (t_scan, t_hist, t_local) in results.items():
        rows.append(f"{p:>5d} {t_scan * 1e3:>10.2f} {t_hist * 1e3:>14.3f} "
                    f"{t_local * 1e3:>16.3f}")
    emit("fig6b_partition", rows)

    for p, (t_scan, t_hist, t_local) in results.items():
        assert t_scan > t_hist, f"scan should be slowest at p={p}"
    # the scan's cost dwarfs the pivot-based methods (the "almost
    # zero" observation)
    assert results[500][0] > 10 * results[500][2]

    # all three agree functionally
    keys, pl, pg = _setup(100)
    assert np.array_equal(partition_full_scan(keys, pg),
                          partition_classic(keys, pg))
    assert np.array_equal(partition_local_pivots(keys, pl, pg),
                          partition_classic(keys, pg))


@pytest.mark.parametrize("method", ["scan", "histogram", "local-pivot"])
def test_fig6b_kernels(benchmark, method):
    keys, pl, pg = _setup(100)
    if method == "scan":
        benchmark(lambda: partition_full_scan(keys, pg))
    elif method == "histogram":
        benchmark(lambda: partition_classic(keys, pg))
    else:
        benchmark(lambda: partition_local_pivots(keys, pl, pg))
