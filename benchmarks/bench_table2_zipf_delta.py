"""Table 2: Zipf exponent alpha -> max replication ratio delta.

Paper: alpha 0.4/0.5/0.6/0.7/0.8/0.9 -> delta 0.2/0.5/1.0/2.0/3.7/6.4 %.
Reproduced both analytically (the normalisation constant of the Zipf
pmf over the calibrated 10,000-value universe) and empirically from
generated datasets.
"""

from __future__ import annotations

import pytest

from repro.metrics import replication_ratio
from repro.workloads import zipf, zipf_delta

from _helpers import emit

PAPER = {0.4: 0.2, 0.5: 0.5, 0.6: 1.0, 0.7: 2.0, 0.8: 3.7, 0.9: 6.4}
N = 400_000


def test_table2_alpha_to_delta(benchmark):
    def compute():
        out = {}
        for alpha in PAPER:
            analytic = zipf_delta(alpha) * 100
            keys = zipf(alpha).generate(N, seed=1).keys
            measured = replication_ratio(keys) * 100
            out[alpha] = (analytic, measured)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'alpha':>6s} {'paper delta%':>12s} {'analytic%':>10s} "
            f"{'measured%':>10s}"]
    for alpha, (ana, mea) in res.items():
        rows.append(f"{alpha:>6.1f} {PAPER[alpha]:>12.1f} {ana:>10.2f} "
                    f"{mea:>10.2f}")
    emit("table2_zipf_delta", rows)

    for alpha, (ana, mea) in res.items():
        # the paper's numbers to within the universe-size fuzz
        assert ana == pytest.approx(PAPER[alpha], rel=0.45)
        assert mea == pytest.approx(ana, rel=0.1)
    # monotone in alpha
    deltas = [res[a][0] for a in sorted(res)]
    assert all(x < y for x, y in zip(deltas, deltas[1:]))
