"""Figure 5c: final local ordering by k-way merging vs sorting.

Paper: merging p received runs costs O(m log p) and rises sharply with
p; sorting the concatenation is nearly flat (and slightly decreasing).
They cross near p = 4000, which sets tau_s.

Two reproductions: the calibrated model at paper scale (1e8 records),
and a *real* measurement of the two kernels at laptop scale showing the
same divergence in p.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import kway_merge, natural_merge_sort
from repro.machine import EDISON
from repro.runner import run_sort
from repro.simfast import crossover, fig5c_local_order, fmt_p
from repro.workloads import by_name

from _helpers import PAPER_N_PER_RANK, emit, fmt_time

PS = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]


def test_fig5c_model(benchmark):
    pts = benchmark(lambda: fig5c_local_order(EDISON, PS, m=PAPER_N_PER_RANK))
    rows = [f"{'p':>6s} {'sort(s)':>10s} {'merge(s)':>10s}"]
    for pt in pts:
        rows.append(f"{fmt_p(int(pt.x)):>6s} {fmt_time(pt.a):>10s} "
                    f"{fmt_time(pt.b):>10s}")
    # note: crossover() reports where `a` (sort) stops losing to `b`
    x = crossover(pts)
    rows.append(f"crossover (tau_s): {x:.0f} processes   (paper: ~4000)")
    emit("fig5c_localorder", rows)

    assert pts[0].b < pts[0].a       # merge wins at 512
    assert pts[-1].b > pts[-1].a     # sort wins at 64K
    assert x is not None and 2000 < x < 8000
    # merge rises monotonically, sort is flat-to-decreasing
    merges = [pt.b for pt in pts]
    sorts = [pt.a for pt in pts]
    assert all(a < b for a, b in zip(merges, merges[1:]))
    assert sorts[-1] <= sorts[0]


def test_fig5c_real_kernels(benchmark):
    """Real wall time: k-way merge cost grows with the run count while
    a from-scratch sort of the same concatenation stays flat."""
    m = 1 << 18
    rng = np.random.default_rng(3)

    def runs_of(k):
        bounds = np.linspace(0, m, k + 1).astype(np.int64)
        keys = rng.random(m)
        return [np.sort(keys[bounds[i]:bounds[i + 1]]) for i in range(k)]

    def measure(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    rows = [f"{'runs':>6s} {'merge(ms)':>10s} {'np.sort(ms)':>12s}"]
    ratios = {}
    for k in (4, 64, 1024):
        chunks = runs_of(k)
        concat = np.concatenate(chunks)
        tm = min(measure(lambda: kway_merge(chunks)) for _ in range(3))
        ts = min(measure(lambda: np.sort(concat)) for _ in range(3))
        ratios[k] = tm / ts
        rows.append(f"{k:>6d} {tm * 1e3:>10.1f} {ts * 1e3:>12.1f}")
    emit("fig5c_real_kernels", rows)

    # merging gets relatively more expensive as the run count grows
    assert ratios[1024] > ratios[4]

    chunks = runs_of(64)
    benchmark(lambda: kway_merge(chunks))


def test_fig5c_adaptive_sort_exploits_runs(benchmark):
    """The natural-merge kernel really is run-adaptive: fewer runs,
    less time (the O(n log runs) claim of Section 2.7)."""
    m = 1 << 18
    rng = np.random.default_rng(4)

    def data_with_runs(k):
        bounds = np.linspace(0, m, k + 1).astype(np.int64)
        keys = rng.random(m)
        for i in range(k):
            keys[bounds[i]:bounds[i + 1]].sort()
        return keys

    few, many = data_with_runs(2), data_with_runs(2048)

    def measure(arr):
        t0 = time.perf_counter()
        natural_merge_sort(arr)
        return time.perf_counter() - t0

    t_few = min(measure(few) for _ in range(3))
    t_many = min(measure(many) for _ in range(3))
    emit("fig5c_adaptive_sort", [
        f"natural merge sort, 2 runs:    {t_few * 1e3:.1f} ms",
        f"natural merge sort, 2048 runs: {t_many * 1e3:.1f} ms",
    ])
    assert t_few < t_many

    benchmark(lambda: natural_merge_sort(few))


def test_fig5c_traced_kernel_attribution(benchmark):
    """Functional companion: the tracer's merge-vs-sort kernel columns
    for the two local-ordering strategies (tau_s ablation).  The merge
    path orders received runs by k-way merging; forcing ``tau_s = 0``
    re-sorts the concatenation instead, which must show up as sort
    records doubling (input sort + final sort) while merge records
    drop to the pivot-selection floor."""
    wl = by_name("uniform")
    base = {"node_merge_enabled": False, "tau_o": 0}

    def run(**extra):
        return run_sort("sds", wl, n_per_rank=500, p=32, mem_factor=None,
                        algo_opts={**base, **extra}, trace=True)

    mg = benchmark(lambda: run())          # p=32 < tau_s: k-way merge
    st = run(tau_s=0)                      # forced final sort
    rows = [f"{'kernel column':>22s} {'merge-path':>12s} {'sort-path':>12s}"]
    kern = {}
    for label, r in (("merge", mg), ("sort", st)):
        kern[label] = r.extras["trace"].counter_totals("kernel.")
    for name in sorted(kern["merge"]):
        rows.append(f"{name:>22s} {kern['merge'][name]:>12.6g} "
                    f"{kern['sort'].get(name, 0.0):>12.6g}")
    emit("fig5c_traced_kernels", rows)

    n_in = 500 * 32
    # sort path: every record sorted twice (ingest + local ordering)
    assert kern["sort"]["kernel.sort.records"] == 2 * n_in
    # merge path: every record k-way merged once in local ordering
    assert kern["merge"]["kernel.sort.records"] == n_in
    assert (kern["merge"]["kernel.merge.records"]
            >= kern["sort"]["kernel.merge.records"] + n_in)
