"""Extension: pivot-selection strategies head to head (Section 2.4).

The paper argues bitonic selection over (a) gathering all p(p-1)
samples on one rank (memory blow-up at large p) and (b) histogram
sorting (struggles to separate duplicated values).  This bench
quantifies all three on the functional engine — pivot *quality* (how
balanced the resulting partition is) and modelled *selection cost* —
plus the rank-0 memory footprint that rules gathering out at scale.
"""

from __future__ import annotations


from repro.machine import EDISON, CostModel
from repro.runner import run_sort
from repro.workloads import uniform, zipf

from _helpers import emit, quick

METHODS = ["bitonic", "gather", "histogram"]


def test_ext_pivot_quality(benchmark):
    p = 16 if quick() else 64

    def compute():
        table = {}
        for wl_name, wl in (("uniform", uniform()), ("zipf1.4", zipf(1.4))):
            for method in METHODS:
                r = run_sort("sds", wl, n_per_rank=1200, p=p, seed=4,
                             mem_factor=None,
                             algo_opts={"node_merge_enabled": False,
                                        "tau_o": 0,
                                        "pivot_method": method})
                table[(wl_name, method)] = r
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'workload':>9s} {'method':>10s} {'RDFA':>8s} {'pivot t(s)':>11s}"]
    for (wl_name, method), r in table.items():
        rows.append(f"{wl_name:>9s} {method:>10s} {r.rdfa:>8.3f} "
                    f"{r.phase_times.get('pivot_selection', 0):>11.6f}")
    emit("ext_pivot_selection", rows)

    for key, r in table.items():
        assert r.ok, f"{key} failed"
    # all three methods keep the skew-aware partition balanced — the
    # histogram method works *because* duplicated pivots are handled
    for method in METHODS:
        assert table[("zipf1.4", method)].rdfa < 3.0


def test_ext_gather_memory_blowup(benchmark):
    """Why the paper rejects gather-based selection at scale: rank 0
    must hold p*(p-1) samples — ~128 GB at 131,072 ranks."""
    def compute():
        rows = []
        for p in (512, 8192, 131072):
            nbytes = p * (p - 1) * 8
            rows.append((p, nbytes))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'p':>8s} {'gathered samples on rank 0':>28s}"]
    for p, nbytes in rows:
        lines.append(f"{p:>8d} {nbytes / 2**30:>25.2f} GB")
    lines.append(f"(rank memory budget on Edison: "
                 f"{EDISON.mem_per_rank / 2**30:.2f} GB)")
    emit("ext_gather_memory", lines)
    assert rows[-1][1] > EDISON.mem_per_rank  # 128K: gather impossible


def test_ext_selection_cost_model(benchmark):
    """Modelled selection cost: bitonic's log^2(p) stages vs the
    gather's serial sort of p(p-1) samples."""
    cost = CostModel(EDISON)

    def compute():
        out = []
        for p in (512, 4096, 32768):
            bitonic = cost.bitonic_sort_time(p, p - 1)
            gather = (cost.tree_collective_time(p, (p - 1) * 8)
                      + cost.sort_time(p * (p - 1)))
            out.append((p, bitonic, gather))
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'p':>8s} {'bitonic(s)':>12s} {'gather(s)':>12s}"]
    for p, b, g in rows:
        lines.append(f"{p:>8d} {b:>12.4f} {g:>12.4f}")
    emit("ext_selection_cost", lines)
    # gathering loses badly at large p (serial p^2 log sort on rank 0)
    assert rows[-1][2] > rows[-1][1]
