"""Figure 8: weak scaling on the Zipf workload, 0.5K-128K cores.

Paper: HykSort fails with out-of-memory at every scale (load imbalance
after the exchange); SDS-Sort delivers 117 TB/min and SDS-Sort/stable
55.8 TB/min at 128K cores, both close to their uniform-workload
numbers.
"""

from __future__ import annotations

from repro.machine import EDISON
from repro.runner import run_sort
from repro.simfast import UniverseModel, fmt_p, weak_scaling_series
from repro.workloads import zipf

from _helpers import (
    FUNC_N,
    PAPER_N_PER_RANK,
    PAPER_P_LIST,
    emit,
    fmt_time,
    quick,
)

#: Table 3 labels the skewed workload "Zipf(0.7-2.0)"; alpha = 0.7
#: (delta = 2%) is its lower edge and the paper's canonical setting.
ALPHA = 0.7
ALGS = ["sds", "sds-stable", "hyksort"]


def test_fig8_weak_scaling_zipf(benchmark):
    model = UniverseModel.zipf(ALPHA)

    def compute():
        return {
            alg: weak_scaling_series(alg, model, PAPER_N_PER_RANK,
                                     PAPER_P_LIST, machine=EDISON)
            for alg in ALGS
        }

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'p':>6s} {'SDS(s)':>9s} {'SDS/st(s)':>10s} {'HykSort':>9s}"]
    for i, p in enumerate(PAPER_P_LIST):
        hyk = series["hyksort"][i]
        rows.append(
            f"{fmt_p(p):>6s} {fmt_time(series['sds'][i].total):>9s} "
            f"{fmt_time(series['sds-stable'][i].total):>10s} "
            f"{'OOM' if hyk.oom else fmt_time(hyk.total):>9s}"
        )
    top_sds = series["sds"][-1]
    top_st = series["sds-stable"][-1]
    rows.append("")
    rows.append("at 128K cores (paper: SDS 117 TB/min, stable 55.8 TB/min, "
                "HykSort OOM):")
    rows.append(f"  sds        {top_sds.throughput_tb_min():7.1f} TB/min")
    rows.append(f"  sds-stable {top_st.throughput_tb_min():7.1f} TB/min")
    emit("fig8_weak_zipf", rows)

    # HykSort OOMs at every scale; SDS variants never do
    assert all(pt.oom for pt in series["hyksort"])
    assert not any(pt.oom for pt in series["sds"])
    assert not any(pt.oom for pt in series["sds-stable"])
    # skewed throughput close to the uniform numbers (paper: 117 vs 111)
    uni = weak_scaling_series("sds", UniverseModel.uniform(),
                              PAPER_N_PER_RANK, [131072], machine=EDISON)[0]
    assert abs(top_sds.throughput_tb_min() - uni.throughput_tb_min()) \
        < 0.5 * uni.throughput_tb_min()


def test_fig8_functional_anchor(benchmark):
    """Functional p=128 runs: HykSort really OOMs on Zipf(0.7)-at-scale
    loads only when delta*p is large enough, so we use alpha=1.4
    (delta=32%) to put the failure inside the functional scale."""
    p = 32 if quick() else 128

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, zipf(1.4), n_per_rank=FUNC_N, p=p,
                                machine=EDISON, algo_opts=opts)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"functional engine, p={p}, zipf(1.4), n={FUNC_N}:"]
    for alg, r in res.items():
        state = "OOM" if r.oom else f"t={fmt_time(r.elapsed)}s rdfa={r.rdfa:.3f}"
        rows.append(f"  {alg:10s} {state}")
    emit("fig8_functional_anchor", rows)

    assert res["sds"].ok and res["sds-stable"].ok
    assert res["hyksort"].oom
