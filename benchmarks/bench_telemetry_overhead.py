"""Telemetry overhead: service throughput with metrics on vs off.

The telemetry layer (``docs/observability.md`` §Service telemetry)
promises the tracer's bargain at service scale: hooks that are a
single ``is None`` check when off, and a handful of dict-lookup
counter bumps per job when on — never anything on the engine's
per-message hot path.  This bench pins the "on" side of that bargain:
a fixed stream of identical-shape ``sds`` jobs runs through an
in-process ``ServiceClient`` at worker concurrency in {1, 4, 16},
once with telemetry enabled (the default) and once with
``telemetry=False``, recording throughput and latency percentiles
exactly like ``bench_service_throughput.py``.

The job shape (p=128, n/rank=200, warm pools) keeps per-job engine
work small, which *maximises* the relative weight of the per-job
bookkeeping — a worst-case framing for telemetry.  The assertions are
deliberately loose (on ≥ 0.7× off per cell, ≤ 1.2× aggregate wall):
per-job cost is a few microseconds against ~40 ms jobs, so a real
hook leaked into a hot path shows up as an integer factor, while
scheduler mood on a loaded host moves cells ±20% either way.

Results land in the ``telemetry_overhead`` section of
``BENCH_engine.json`` (schema v10), read-modify-write like the other
engine benches.

Run directly (``python benchmarks/bench_telemetry_overhead.py``) or
via pytest.  ``REPRO_BENCH_QUICK`` drops the concurrency-16 cell and
shrinks the stream.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.service import ServiceClient

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"
SCHEMA = "bench_engine_walltime/v10"

P = 128
N_PER_RANK = 200
CONCURRENCY = (1, 4) if quick() else (1, 4, 16)
JOBS = 8 if quick() else 20


def _spec(seed: int) -> dict:
    # same shape as bench_service_throughput.py (node merging off:
    # at this tiny n/rank the node gather would OOM the leader)
    return {"algorithm": "sds", "workload": "uniform", "backend": "thread",
            "p": P, "n_per_rank": N_PER_RANK, "seed": seed,
            "algo_opts": {"node_merge_enabled": False}}


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _run_stream(workers: int, telemetry: bool) -> dict:
    """Submit JOBS jobs, wait for all, return throughput + latency."""
    with ServiceClient(workers=workers, telemetry=telemetry) as client:
        client.run(_spec(seed=10_000))   # warm the pool cache
        t0 = time.perf_counter()
        ids = [client.submit(_spec(seed=s))["job_id"] for s in range(JOBS)]
        envs = [client.result(job_id) for job_id in ids]
        wall = time.perf_counter() - t0
    assert all(e["status"] == "done" for e in envs), (
        [e["error"] for e in envs if e["status"] != "done"])
    lat = [e["timing"]["total_ms"] for e in envs]
    return {
        "workers": workers,
        "telemetry": telemetry,
        "jobs": JOBS,
        "wall_seconds": round(wall, 4),
        "jobs_per_min": round(JOBS / wall * 60.0, 1),
        "latency_ms": {"p50": round(_percentile(lat, 0.50), 2),
                       "p99": round(_percentile(lat, 0.99), 2),
                       "mean": round(sum(lat) / len(lat), 2)},
    }


def measure() -> dict:
    out: dict[str, dict] = {}
    for workers in CONCURRENCY:
        for telemetry in (True, False):
            key = f"c{workers}_{'on' if telemetry else 'off'}"
            out[key] = _run_stream(workers, telemetry)
    return out


def write_report(runs: dict) -> list[str]:
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    existing["schema"] = SCHEMA
    existing["telemetry_overhead"] = {
        "machine": "in-process ServiceClient, sds uniform "
                   f"p={P} n/rank={N_PER_RANK}, thread backend, warm "
                   f"pools, {JOBS}-job stream per cell "
                   "(1 warm-up discarded), telemetry on vs off",
        "runs": runs,
    }
    JSON_PATH.write_text(json.dumps(existing, indent=1) + "\n")

    rows = [f"{'config':>8s} {'jobs/min':>9s} {'p50(ms)':>8s} "
            f"{'p99(ms)':>8s}"]
    for name, r in runs.items():
        rows.append(f"{name:>8s} {r['jobs_per_min']:>9.1f} "
                    f"{r['latency_ms']['p50']:>8.2f} "
                    f"{r['latency_ms']['p99']:>8.2f}")
    return rows


def test_telemetry_overhead():
    runs = measure()
    rows = write_report(runs)
    emit("telemetry_overhead", rows)
    # per-cell: telemetry must stay inside scheduler noise (a leak
    # into a hot path would show up as an integer-factor regression)
    for workers in CONCURRENCY:
        on, off = runs[f"c{workers}_on"], runs[f"c{workers}_off"]
        assert on["jobs_per_min"] > off["jobs_per_min"] * 0.7, (
            workers, on["jobs_per_min"], off["jobs_per_min"])
    # and in aggregate across the matrix
    on_wall = sum(r["wall_seconds"] for r in runs.values()
                  if r["telemetry"])
    off_wall = sum(r["wall_seconds"] for r in runs.values()
                   if not r["telemetry"])
    assert on_wall < off_wall * 1.2, (on_wall, off_wall)


if __name__ == "__main__":
    test_telemetry_overhead()
    print(f"wrote {JSON_PATH}")
