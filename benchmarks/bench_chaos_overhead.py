"""Virtual-walltime overhead of the fault/recovery paths at scale.

The resilience subsystem prices every recovery action — retransmission
timeouts, duplicate discards, collective re-synchronisation, degraded
completion after a crash — through the LogGP cost model.  This bench
tracks what those paths *cost* in simulated seconds at p in {256, 512},
relative to the fault-free baseline of the same configuration, plus
the host wall-clock of running the faulted worlds (the injection hooks
sit on the engine's per-message hot path, so a hook regression shows
up here before it shows up in the tier-1 suite).

Results land in the ``chaos`` section of ``BENCH_engine.json`` (schema
v6).  This bench, ``bench_engine_walltime.py`` and
``bench_trace_overhead.py`` all read-modify-write the file, each
preserving the others' sections, so the engine baselines (seed_issue /
seed_host / pre_fusion and the walltime runs) carry over unchanged.

Run directly (``python benchmarks/bench_chaos_overhead.py``) or via
pytest.  ``REPRO_BENCH_QUICK`` drops the p=512 points.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.faults import CrashFault, FaultSpec, MessageFaults, StragglerFault
from repro.runner import run_sort
from repro.workloads import by_name

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, fmt_time, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"
SCHEMA = "bench_engine_walltime/v10"

#: (name, spec) — one scenario per recovery path.  Node merging is
#: disabled throughout so every rank stays crash-eligible and the p2p
#: hot path is exercised at full fan-out (see docs/faults.md).
SCENARIOS = [
    ("drop5", FaultSpec(messages=MessageFaults(drop_rate=0.05))),
    ("straggler4x", FaultSpec(stragglers=(StragglerFault(count=2,
                                                         slowdown=4.0),))),
    ("transient_mix", FaultSpec(
        messages=MessageFaults(drop_rate=0.02, delay_rate=0.1),
    )),
    ("crash_exchange", FaultSpec(crashes=(CrashFault(phase="exchange"),))),
]

N_PER_RANK = 500


def measure() -> dict:
    """Per (p, scenario): virtual overhead vs fault-free + host wall."""
    wl = by_name("uniform")
    opts = {"node_merge_enabled": False}
    out: dict[str, dict] = {}
    for p in (256,) if quick() else (256, 512):
        base = run_sort("sds", wl, n_per_rank=N_PER_RANK, p=p,
                        mem_factor=None, algo_opts=opts)
        assert base.ok
        for name, spec in SCENARIOS:
            t0 = time.perf_counter()
            r = run_sort("sds", wl, n_per_rank=N_PER_RANK, p=p,
                         mem_factor=None, algo_opts=opts,
                         faults=spec, fault_seed=0)
            wall = time.perf_counter() - t0
            assert r.ok, f"{name} at p={p} failed: {r.failure}"
            counters = r.extras["faults"]
            out[f"p{p}_{name}"] = {
                "p": p,
                "n_per_rank": N_PER_RANK,
                "scenario": name,
                "spec": spec.as_dict(),
                "baseline_sim_seconds": round(base.elapsed, 6),
                "sim_seconds": round(r.elapsed, 6),
                "overhead": round(r.elapsed / base.elapsed - 1.0, 4),
                "faults_injected": round(sum(
                    v for k, v in counters.items()
                    if k.startswith("faults."))),
                "retry_time": round(counters.get("retry.time", 0.0), 6),
                "crashed_ranks": r.extras["crashed_ranks"],
                "host_wall_seconds": round(wall, 4),
            }
    return out


def write_report(chaos_runs: dict) -> list[str]:
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    existing["schema"] = SCHEMA
    existing["chaos"] = {
        "machine": "EDISON cost model, uniform workload, node_merge off, "
                   "no memory limit",
        "runs": chaos_runs,
    }
    JSON_PATH.write_text(json.dumps(existing, indent=1) + "\n")

    rows = [f"{'config':>22s} {'base(s)':>9s} {'sim(s)':>9s} "
            f"{'overhead':>9s} {'faults':>7s} {'host(s)':>8s}"]
    for name, r in chaos_runs.items():
        rows.append(
            f"{name:>22s} {fmt_time(r['baseline_sim_seconds']):>9s} "
            f"{fmt_time(r['sim_seconds']):>9s} {r['overhead']:>8.1%} "
            f"{r['faults_injected']:>7d} {fmt_time(r['host_wall_seconds']):>8s}")
    return rows


def test_chaos_overhead():
    runs = measure()
    rows = write_report(runs)
    emit("chaos_overhead", rows)
    for name, r in runs.items():
        # every scenario injected something and still completed
        assert r["faults_injected"] > 0, name
        # stragglers must cost *something*; the effect is small at this
        # shape because the slowdown scales comm.charge CPU costs only
        # (local sort, partitioning) while the fused-exchange clock
        # replay — network-dominated at n/rank=500 — is not scaled
        # (docs/faults.md)
        if "straggler" in name:
            assert r["overhead"] > 0, (name, r["overhead"])
        # recovery never blows the run up by more than the retry budget
        # allows at this scale (generous ceiling; catches runaway
        # re-pricing, not model drift)
        assert r["sim_seconds"] < r["baseline_sim_seconds"] * 200, name
    if "p256_crash_exchange" in runs:
        assert len(runs["p256_crash_exchange"]["crashed_ranks"]) == 1


if __name__ == "__main__":
    test_chaos_overhead()
    print(f"wrote {JSON_PATH}")
