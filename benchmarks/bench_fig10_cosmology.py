"""Figure 10 + Table 4 (cosmology half): sorting particles by cluster ID.

Paper: 2.1 TB / 68e9 particles (cluster-ID key, delta = 0.73%, payload
x/y/z/vx/vy/vz) on 16K cores.  HykSort dies of OOM; SDS-Sort finishes
at 15.63 TB/min, SDS-Sort/stable at 7.87 TB/min; RDFA 1.396 for both.

Functional phase breakdown at a thread-engine scale (p = 128), the OOM
statement and RDFA at the paper's 16K-core scale via the count-space
evaluator, and throughput from the phase-time model.
"""

from __future__ import annotations

import math

from repro.machine import EDISON
from repro.metrics import rdfa
from repro.runner import MEM_FACTOR, run_sort
from repro.simfast import UniverseModel, countspace_loads, sds_phase_times
from repro.workloads import cosmology

from _helpers import emit, fmt_time, quick

P_FUNC = 128
P_PAPER = 16384
N = 1200
#: paper: 2.1 TB / 68e9 particles ~= 31 bytes/record (ID + 6 floats)
N_PAPER = 68_000_000_000 // P_PAPER
RECORD_BYTES = 31
ALGS = ["hyksort", "sds", "sds-stable"]


def test_fig10_cosmology(benchmark):
    p = 32 if quick() else P_FUNC

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, cosmology(), n_per_rank=N, p=p,
                                machine=EDISON, algo_opts=opts, seed=11)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"cosmology-like, functional p={p}, n={N}/rank, delta=0.73%:"]
    for alg in ALGS:
        r = res[alg]
        state = ("OOM" if r.oom
                 else f"t={fmt_time(r.elapsed)}s rdfa={r.rdfa:.3f}")
        rows.append(f"  {alg:10s} {state}")

    # the paper-scale OOM statement: at 16K ranks the duplicate spike
    # is 0.0073 * 16384 ~= 120x a rank's input
    model = UniverseModel.power_law_clusters(0.0073)
    hyk_loads = countspace_loads(model, N_PAPER, P_PAPER, method="hyksort")
    hyk_factor = hyk_loads.max() / N_PAPER
    sds_loads = countspace_loads(model, N_PAPER, P_PAPER, method="fast")
    rows.append("")
    rows.append(f"at p={P_PAPER} (paper scale): HykSort max-load = "
                f"{hyk_factor:.0f} x N/p vs {MEM_FACTOR}x capacity -> OOM "
                f"(paper: OOM)")
    rows.append(f"SDS RDFA at p={P_PAPER}: {rdfa(sds_loads):.4f} "
                f"(paper: 1.3962)")

    # model throughputs at the paper scale
    fast = sds_phase_times(model, N_PAPER, P_PAPER, machine=EDISON,
                           record_bytes=RECORD_BYTES)
    stab = sds_phase_times(model, N_PAPER, P_PAPER, machine=EDISON,
                           record_bytes=RECORD_BYTES, stable=True)
    rows.append("")
    rows.append(f"model at 16K cores: sds {fast.throughput_tb_min():.2f} "
                f"TB/min, stable {stab.throughput_tb_min():.2f} TB/min "
                f"(paper: 15.63 / 7.87)")
    emit("fig10_cosmology", rows)

    # functional: SDS variants complete, HykSort badly imbalanced or OOM
    assert res["sds"].ok and res["sds-stable"].ok
    assert res["sds"].rdfa < 2.5
    # paper-scale failure reproduces
    assert 1 + hyk_factor > MEM_FACTOR
    assert rdfa(sds_loads) < 2.5
    # stable slower but same balance
    assert stab.total > fast.total


def test_table4_cosmology_rdfa(benchmark):
    """Table 4's cosmology row: SDS/stable RDFA ~ 1.396, HykSort inf."""
    model = UniverseModel.power_law_clusters(0.0073)

    def compute():
        return {
            "sds": rdfa(countspace_loads(model, N_PAPER, P_PAPER, method="fast")),
            "sds-stable": rdfa(countspace_loads(model, N_PAPER, P_PAPER,
                                                method="stable")),
            "hyk_factor": countspace_loads(model, N_PAPER, P_PAPER,
                                           method="hyksort").max() / N_PAPER,
        }

    vals = benchmark.pedantic(compute, rounds=1, iterations=1)
    hyk = math.inf if 1 + vals["hyk_factor"] > MEM_FACTOR else vals["hyk_factor"]
    emit("table4_cosmology_rdfa", [
        f"{'Cosmology':12s} hyksort={'inf (OOM)' if math.isinf(hyk) else hyk} "
        f"sds={vals['sds']:.4f} sds-stable={vals['sds-stable']:.4f}",
        "paper:       hyksort=inf sds=1.3962 sds-stable=1.3962",
    ])
    assert math.isinf(hyk)
    assert vals["sds"] < 2.5
    assert abs(vals["sds"] - vals["sds-stable"]) < 0.1
