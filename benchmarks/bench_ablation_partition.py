"""Ablations on the design choices DESIGN.md calls out.

1. skew-aware partitioning on/off — the whole point of the paper;
2. local-pivot acceleration on/off — real partition-kernel wall time;
3. node-level merging on/off on a slow-network machine — where the
   Section 2.3 detour pays;
4. exact-duplicate splitting vs the paper's literal Figure 2 span split
   — demonstrating why DESIGN.md deviates (the literal rule can break
   global order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    find_replicated_runs,
    partition_classic,
    partition_fast,
)
from repro.machine import EDISON, EDISON_SLOW_NET, CostModel
from repro.runner import run_sort
from repro.workloads import zipf

from _helpers import emit, fmt_rdfa, quick


def test_ablation_skew_aware(benchmark):
    """Turning the skew-aware partition off reverts to classic PSS
    behaviour: the duplicate mass lands on single ranks."""
    p = 16 if quick() else 64

    def compute():
        on = run_sort("sds", zipf(1.4), n_per_rank=1200, p=p, seed=1,
                      mem_factor=None,
                      algo_opts={"node_merge_enabled": False, "tau_o": 0})
        off = run_sort("sds", zipf(1.4), n_per_rank=1200, p=p, seed=1,
                       mem_factor=None,
                       algo_opts={"node_merge_enabled": False, "tau_o": 0,
                                  "skew_aware": False})
        return on, off

    on, off = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_skew_aware", [
        f"zipf(1.4) delta=32%, p={p}:",
        f"  skew-aware ON : rdfa={fmt_rdfa(on.rdfa)} t={on.elapsed:.4f}s",
        f"  skew-aware OFF: rdfa={fmt_rdfa(off.rdfa)} t={off.elapsed:.4f}s",
    ])
    assert on.rdfa < 3.0
    assert off.rdfa > 2 * on.rdfa
    assert off.elapsed > on.elapsed  # imbalance costs time too


def test_ablation_node_merge_slow_network(benchmark):
    """On the slow-network machine variant, node merging cuts the
    modelled exchange cost for small messages."""
    cost_fast = CostModel(EDISON)
    cost_slow = CostModel(EDISON_SLOW_NET)

    def compute():
        small = 2 * 2**20  # 2 MB per rank
        rows = []
        for name, cost in (("edison", cost_fast), ("slow-net", cost_slow)):
            unmerged = cost.alltoallv_time(12288, small, ranks_per_node=24)
            merged = cost.alltoallv_time(512, small * 24, ranks_per_node=1)
            rows.append((name, merged, unmerged))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["2 MB/rank exchange, merged vs unmerged:"]
    for name, merged, unmerged in rows:
        lines.append(f"  {name:9s} merged={merged:.4f}s unmerged={unmerged:.4f}s "
                     f"({'merge wins' if merged < unmerged else 'no merge'})")
    emit("ablation_node_merge", lines)
    slow = rows[1]
    assert slow[1] < slow[2]
    # the advantage is larger on the slow network
    assert (rows[1][2] / rows[1][1]) > (rows[0][2] / rows[0][1])


def _span_split_partition(sorted_keys: np.ndarray, pg: np.ndarray) -> np.ndarray:
    """The paper's literal Figure 2 fast split: divide
    ``[upper_bound(ppv), upper_bound(v))`` evenly — including values
    strictly between ppv and the duplicated pivot."""
    a = np.asarray(sorted_keys)
    displs = partition_classic(a, pg)
    for run in find_replicated_runs(np.asarray(pg)):
        ppd = (0 if run.start == 0
               else int(np.searchsorted(a, pg[run.start - 1], side="right")))
        pd = int(np.searchsorted(a, run.value, side="right"))
        span = pd - ppd
        for k in range(run.length):
            displs[run.start + k + 1] = ppd + (span * (k + 1)) // run.length
    return displs


def test_ablation_literal_span_split_breaks_order(benchmark):
    """Why DESIGN.md deviates from the Figure 2 pseudocode: splitting
    the whole (ppv, v] span scatters sub-pivot values across ranks and
    violates global order; splitting only exact duplicates does not."""
    # rank 0 holds values just below the duplicated pivot; rank 1 holds
    # only duplicates of it
    shard0 = np.array([1.0, 4.0, 4.5, 5.0, 5.0])
    shard1 = np.array([5.0, 5.0, 5.0, 5.0, 5.0])
    pg = np.array([5.0, 5.0])  # p=3, duplicated pivot value 5.0

    def received(partition_fn):
        d0 = partition_fn(shard0, pg)
        d1 = partition_fn(shard1, pg)
        return [
            np.concatenate([shard0[d0[j]:d0[j + 1]], shard1[d1[j]:d1[j + 1]]])
            for j in range(3)
        ]

    # the literal span split puts 4.5 (from rank 0's span) on a later
    # rank than some 5.0s -> global order violated
    bad = benchmark.pedantic(lambda: received(_span_split_partition),
                             rounds=1, iterations=1)
    violations = []
    prev_max = -np.inf
    for chunk in bad:
        if chunk.size:
            if chunk.min() < prev_max:
                violations.append(float(chunk.min()))
            prev_max = max(prev_max, chunk.max())
    good = received(partition_fast)
    prev_max = -np.inf
    for chunk in good:
        if chunk.size:
            assert chunk.min() >= prev_max
            prev_max = chunk.max()
    emit("ablation_span_split", [
        "literal Figure 2 span split: order violations at values "
        f"{violations} (expected non-empty)",
        "exact-duplicate split (this repo): no violations",
    ])
    assert violations, "the literal rule should misplace sub-pivot values"


@pytest.mark.parametrize("accel", [True, False])
def test_ablation_local_pivot_cost(benchmark, accel):
    """Modelled partition cost with and without the two-level search."""
    cost = CostModel(EDISON)
    n, p = 100_000_000, 8192
    if accel:
        benchmark(lambda: cost.binary_search_time(n // p, searches=2 * (p - 1)))
        t = cost.binary_search_time(n // p, searches=2 * (p - 1))
    else:
        benchmark(lambda: cost.binary_search_time(n, searches=p - 1))
        t = cost.binary_search_time(n, searches=p - 1)
    # two short searches beat one long search only via the log factor;
    # the real win (Figure 6b) is against the O(n) scan
    assert t < 1.0
