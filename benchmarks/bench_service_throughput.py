"""Service throughput: jobs/min and job latency, warm vs cold pools.

The service subsystem (``docs/service.md``) schedules jobs on a
``WarmPoolCache`` so a stream of same-shaped jobs pays engine start-up
(spawning the ``SpmdPool`` rank threads) once instead of per job.
This bench measures what that buys on the host: a fixed stream of
identical-shape ``sds`` jobs is pushed through an in-process
``ServiceClient`` at worker concurrency in {1, 4, 16}, once with the
warm-pool cache enabled and once with every job on a cold
made-to-order pool, recording throughput (jobs/min) and per-job
latency percentiles (p50/p99 of the envelope's ``timing.total_ms``,
which spans submission to completion, queueing included).

The job shape is p=128, n/rank=200: large enough rank count that pool
start-up is a real fraction of the job (the single-job probe measures
~43 ms warm vs ~58 ms cold on the reference host), small enough that
the whole matrix stays in seconds.  With ~20 samples per cell the p99
is effectively the max — it is recorded as a tail indicator, not a
stable quantile.

Results land in the ``service_throughput`` section of
``BENCH_engine.json`` (schema v10).  Like the other engine benches this
read-modify-writes the file, preserving every other section.

Run directly (``python benchmarks/bench_service_throughput.py``) or
via pytest.  ``REPRO_BENCH_QUICK`` drops the concurrency-16 cell and
shrinks the stream.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.service import ServiceClient

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"
SCHEMA = "bench_engine_walltime/v10"

P = 128
N_PER_RANK = 200
CONCURRENCY = (1, 4) if quick() else (1, 4, 16)
JOBS = 8 if quick() else 20


def _spec(seed: int) -> dict:
    # node merging off, as in bench_engine_walltime.py: at this tiny
    # n/rank the 24-rank node gather would OOM the leader's simulated
    # memory, and the bench wants the full-fan-out engine path anyway
    return {"algorithm": "sds", "workload": "uniform", "backend": "thread",
            "p": P, "n_per_rank": N_PER_RANK, "seed": seed,
            "algo_opts": {"node_merge_enabled": False}}


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _run_stream(workers: int, warm: bool) -> dict:
    """Submit JOBS jobs, wait for all, return throughput + latency."""
    with ServiceClient(workers=workers, warm_pools=warm) as client:
        # one discarded warm-up job so the warm cell measures steady
        # state (pool already built) and the cold cell still rebuilds
        # per job — the asymmetry under test
        client.run(_spec(seed=10_000))
        t0 = time.perf_counter()
        ids = [client.submit(_spec(seed=s))["job_id"] for s in range(JOBS)]
        envs = [client.result(job_id) for job_id in ids]
        wall = time.perf_counter() - t0
        pool_stats = client.stats()["pools"]
    assert all(e["status"] == "done" for e in envs), (
        [e["error"] for e in envs if e["status"] != "done"])
    lat = [e["timing"]["total_ms"] for e in envs]
    return {
        "workers": workers,
        "warm_pools": warm,
        "jobs": JOBS,
        "wall_seconds": round(wall, 4),
        "jobs_per_min": round(JOBS / wall * 60.0, 1),
        "latency_ms": {"p50": round(_percentile(lat, 0.50), 2),
                       "p99": round(_percentile(lat, 0.99), 2),
                       "mean": round(sum(lat) / len(lat), 2)},
        "pool_stats": pool_stats,
    }


def measure() -> dict:
    out: dict[str, dict] = {}
    for workers in CONCURRENCY:
        for warm in (True, False):
            key = f"c{workers}_{'warm' if warm else 'cold'}"
            out[key] = _run_stream(workers, warm)
    return out


def write_report(runs: dict) -> list[str]:
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    existing["schema"] = SCHEMA
    existing["service_throughput"] = {
        "machine": "in-process ServiceClient, sds uniform "
                   f"p={P} n/rank={N_PER_RANK}, thread backend, "
                   f"{JOBS}-job stream per cell (1 warm-up discarded)",
        "runs": runs,
    }
    JSON_PATH.write_text(json.dumps(existing, indent=1) + "\n")

    rows = [f"{'config':>10s} {'jobs/min':>9s} {'p50(ms)':>8s} "
            f"{'p99(ms)':>8s} {'pool hits':>9s}"]
    for name, r in runs.items():
        rows.append(f"{name:>10s} {r['jobs_per_min']:>9.1f} "
                    f"{r['latency_ms']['p50']:>8.2f} "
                    f"{r['latency_ms']['p99']:>8.2f} "
                    f"{r['pool_stats'].get('hits', 0):>9d}")
    return rows


def test_service_throughput():
    runs = measure()
    rows = write_report(runs)
    emit("service_throughput", rows)
    for workers in CONCURRENCY:
        warm, cold = runs[f"c{workers}_warm"], runs[f"c{workers}_cold"]
        # the warm cache actually served the stream from reuse
        assert warm["pool_stats"]["hits"] >= JOBS - workers, warm
        assert not cold["pool_stats"].get("hits"), cold
    # warm pools must beat cold where the comparison is noise-free:
    # single-worker, strictly serial, every cold job pays a fresh
    # 128-thread pool spawn (generous margin — the reference host
    # measures ~1.3x; 1.05x catches a dead cache, not scheduler mood)
    warm1, cold1 = runs["c1_warm"], runs["c1_cold"]
    assert warm1["jobs_per_min"] > cold1["jobs_per_min"] * 1.05, (
        warm1["jobs_per_min"], cold1["jobs_per_min"])
    # and in aggregate across the whole concurrency matrix
    warm_wall = sum(r["wall_seconds"] for r in runs.values()
                    if r["warm_pools"])
    cold_wall = sum(r["wall_seconds"] for r in runs.values()
                    if not r["warm_pools"])
    assert warm_wall < cold_wall, (warm_wall, cold_wall)


if __name__ == "__main__":
    test_service_throughput()
    print(f"wrote {JSON_PATH}")
