"""Figure 9 + Table 4 (PTF half): sorting Palomar Transient Factory data.

Paper: 27 GB / 1e9 records of real-bogus scores (delta = 28.02%) on 192
cores; phase breakdown bars.  HykSort survives (the whole dataset fits
in one node's 64 GB, so the overloaded rank does not OOM) but is badly
imbalanced (RDFA 32.68) and 3.4x slower than SDS-Sort; SDS-Sort/stable
is 2.2x faster than HykSort; SDS RDFA 1.99, stable 1.69.

Functional reproduction on the thread engine at the paper's process
count (192 simulated ranks) with the dataset scaled down; memory is
left uncapped for HykSort exactly as the 64 GB single node allowed.
"""

from __future__ import annotations

import math

from repro.machine import EDISON
from repro.runner import run_sort
from repro.workloads import ptf

from _helpers import emit, fmt_time, quick

P = 192          # the paper's core count
N = 1500         # records per rank (paper: ~5.2M per rank)
ALGS = ["hyksort", "sds", "sds-stable"]
PHASES = ["pivot_selection", "exchange", "local_ordering"]


def _phase_rows(name, r):
    total = r.elapsed
    shown = {ph: r.phase_times.get(ph, 0.0) for ph in PHASES}
    other = max(0.0, total - sum(shown.values()))
    cells = " ".join(f"{ph}={fmt_time(t)}" for ph, t in shown.items())
    return f"  {name:10s} total={fmt_time(total)}s  {cells} other={fmt_time(other)}"


def test_fig9_ptf(benchmark):
    p = 48 if quick() else P

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            # mem_factor None: the paper notes the full dataset fits in
            # one node's memory, so HykSort limps through instead of
            # crashing
            out[alg] = run_sort(alg, ptf(), n_per_rank=N, p=p,
                                machine=EDISON, mem_factor=None,
                                algo_opts=opts, seed=9)
        return out

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"PTF-like, p={p}, n={N}/rank, delta=28.02%:"]
    for alg in ALGS:
        rows.append(_phase_rows(alg, res[alg]))
    rows.append("")
    sds_speedup = res["hyksort"].elapsed / res["sds"].elapsed
    st_speedup = res["hyksort"].elapsed / res["sds-stable"].elapsed
    rows.append(f"SDS speedup over HykSort:        {sds_speedup:.2f}x "
                f"(paper: 3.4x)")
    rows.append(f"SDS/stable speedup over HykSort: {st_speedup:.2f}x "
                f"(paper: 2.2x)")
    rows.append("")
    rows.append(f"{'RDFA':8s} hyksort={res['hyksort'].rdfa:.2f} "
                f"sds={res['sds'].rdfa:.2f} "
                f"sds-stable={res['sds-stable'].rdfa:.2f}  "
                f"(paper: 32.68 / 1.99 / 1.69)")
    emit("fig9_ptf", rows)

    assert all(r.ok for r in res.values())
    # who wins, and by what kind of factor
    assert sds_speedup > 2.0
    assert st_speedup > 1.3
    assert sds_speedup > st_speedup
    # the imbalance mechanism: HykSort RDFA explodes, SDS stays ~2
    assert res["hyksort"].rdfa > 10
    assert res["sds"].rdfa < 3
    assert res["sds-stable"].rdfa < 3
    # the imbalance shows up in exchange + ordering, not local sort
    hyk = res["hyksort"].phase_times
    assert (hyk.get("exchange", 0) + hyk.get("local_ordering", 0)
            > hyk.get("local_sort", 0))


def test_table4_ptf_rdfa(benchmark):
    """Table 4's PTF row at a larger functional scale."""
    p = 48 if quick() else P

    def compute():
        out = {}
        for alg in ALGS:
            opts = ({"node_merge_enabled": False, "tau_o": 0}
                    if alg.startswith("sds") else None)
            out[alg] = run_sort(alg, ptf(), n_per_rank=3000, p=p,
                                machine=EDISON, mem_factor=None,
                                algo_opts=opts, seed=10)
        return {alg: r.rdfa for alg, r in out.items()}

    rdfas = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("table4_ptf_rdfa", [
        f"{'PTF':12s} hyksort={rdfas['hyksort']:.3f} sds={rdfas['sds']:.3f} "
        f"sds-stable={rdfas['sds-stable']:.3f}",
        "paper:       hyksort=32.676 sds=1.991 sds-stable=1.691",
    ])
    assert rdfas["hyksort"] > 10
    assert rdfas["sds"] < 3 and rdfas["sds-stable"] < 3
    assert not math.isinf(rdfas["hyksort"])
