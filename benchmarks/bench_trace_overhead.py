"""Host cost of the observability hooks: tracing off vs on at scale.

The tracer's zero-overhead-when-off guarantee is structural (every
hook is one ``is None`` attribute check), but the *when-on* cost rides
the engine's per-message hot path, so this bench measures both sides
at p in {256, 512}: host wall-clock of identical worlds with tracing
disabled and enabled, plus the span/counter volume the enabled run
collects.  Virtual clocks must be bit-for-bit equal either way — that
is asserted here on every pair, not just in the unit tests.

Results land in the ``trace_overhead`` section of
``BENCH_engine.json`` (schema v6).  This bench,
``bench_engine_walltime.py`` and ``bench_chaos_overhead.py`` all
read-modify-write the file, each preserving the others' sections, so
the v4 baselines carry over unchanged.

Run directly (``python benchmarks/bench_trace_overhead.py``) or via
pytest.  ``REPRO_BENCH_QUICK`` drops the p=512 point.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.runner import run_sort
from repro.workloads import by_name

sys.path.insert(0, str(Path(__file__).parent))
from _helpers import emit, fmt_time, quick  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_engine.json"
SCHEMA = "bench_engine_walltime/v10"

N_PER_RANK = 500
REPS = 2


def measure() -> dict:
    """Best-of-``REPS`` wall seconds per p, tracing off and on."""
    wl = by_name("uniform")
    opts = {"node_merge_enabled": False}
    out: dict[str, dict] = {}
    for p in (256,) if quick() else (256, 512):
        walls = {False: float("inf"), True: float("inf")}
        results = {}
        for trace in (False, True):
            for _ in range(REPS):
                t0 = time.perf_counter()
                r = run_sort("sds", wl, n_per_rank=N_PER_RANK, p=p,
                             mem_factor=None, algo_opts=opts, trace=trace)
                walls[trace] = min(walls[trace], time.perf_counter() - t0)
                assert r.ok, f"p={p} trace={trace} failed: {r.failure}"
                results[trace] = r
        # the guarantee under test: tracing never moves a virtual clock
        assert results[False].elapsed == results[True].elapsed, p
        report = results[True].extras["trace"]
        rec = report.reconcile()
        out[f"p{p}"] = {
            "p": p,
            "n_per_rank": N_PER_RANK,
            "sim_seconds": round(results[True].elapsed, 6),
            "wall_off_seconds": round(walls[False], 4),
            "wall_on_seconds": round(walls[True], 4),
            "overhead": round(walls[True] / walls[False] - 1.0, 4),
            "spans": sum(len(s) for s in report.spans),
            "counters": sum(len(c) for c in report.counters),
            "max_cost_gap": rec["max_cost_gap"],
            "max_phase_gap": rec["max_phase_gap"],
        }
    return out


def write_report(trace_runs: dict) -> list[str]:
    existing = (json.loads(JSON_PATH.read_text())
                if JSON_PATH.exists() else {})
    existing["schema"] = SCHEMA
    existing["trace_overhead"] = {
        "machine": "EDISON cost model, uniform workload, node_merge off, "
                   "no memory limit",
        "runs": trace_runs,
    }
    JSON_PATH.write_text(json.dumps(existing, indent=1) + "\n")

    rows = [f"{'config':>8s} {'off(s)':>8s} {'on(s)':>8s} "
            f"{'overhead':>9s} {'spans':>7s}"]
    for name, r in trace_runs.items():
        rows.append(f"{name:>8s} {fmt_time(r['wall_off_seconds']):>8s} "
                    f"{fmt_time(r['wall_on_seconds']):>8s} "
                    f"{r['overhead']:>8.1%} {r['spans']:>7d}")
    return rows


def test_trace_overhead():
    runs = measure()
    rows = write_report(runs)
    emit("trace_overhead", rows)
    for name, r in runs.items():
        # the enabled run actually observed the world...
        assert r["spans"] > 0, name
        # ...and its attribution reconciles with the clocks
        assert r["max_cost_gap"] < 1e-9, (name, r)
        # generous ceiling: tracing may not blow host cost up (the
        # hooks are tuple appends and float adds; catches an
        # accidentally quadratic hook, not timer jitter on CI hosts)
        assert r["wall_on_seconds"] < r["wall_off_seconds"] * 5 + 1.0, name


if __name__ == "__main__":
    test_trace_overhead()
    print(f"wrote {JSON_PATH}")
