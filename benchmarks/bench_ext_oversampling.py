"""Extension: sampling-quality study — regular vs random oversampling.

The paper's lineage: Frazer & McKellar's original samplesort ([15])
draws *random* samples; Li et al.'s regular sampling ([19], what
SDS-Sort uses) samples quantiles of locally sorted data and achieves
the deterministic 2N/p guarantee.  This bench measures pivot quality
(max partition load over the ideal N/p) as the random scheme's
oversampling factor grows, against regular sampling's fixed budget of
p-1 samples per rank.
"""

from __future__ import annotations

import numpy as np

from repro.core import select_pivots_oversample
from repro.mpi import run_spmd
from repro.simfast import evaluate_loads, generate_sorted_shards, partition_loads
from repro.workloads import uniform

from _helpers import emit, quick

P = 32
N = 4000
FACTORS = [2, 8, 32, 128]


def _oversample_max_load(factor: int, p: int) -> float:
    def prog(comm):
        keys = np.sort(uniform().shard(N, comm.size, comm.rank, 3).keys)
        return select_pivots_oversample(comm, keys, oversample=factor, seed=5)
    pg = run_spmd(prog, p).results[0]
    shards = generate_sorted_shards(uniform(), N, p, 3)
    loads = partition_loads(shards, pg, "fast")
    return float(loads.max()) / N


def test_ext_oversampling_quality(benchmark):
    p = 8 if quick() else P

    def compute():
        rows = {f: _oversample_max_load(f, p) for f in FACTORS}
        regular = evaluate_loads(uniform(), N, p, seed=3).max_over_avg
        return rows, regular

    rows, regular = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"uniform, p={p}, n={N}/rank; max load / (N/p):",
             f"{'scheme':>22s} {'samples/rank':>13s} {'max/avg':>8s}"]
    for f in FACTORS:
        lines.append(f"{'random oversampling':>22s} {f:>13d} {rows[f]:>8.3f}")
    lines.append(f"{'regular sampling':>22s} {p - 1:>13d} {regular:>8.3f}")
    emit("ext_oversampling", lines)

    # quality improves with the oversampling factor...
    assert rows[128] < rows[2]
    # ...and regular sampling at a p-1 budget is competitive with heavy
    # random oversampling (the [19]-over-[15] design choice)
    assert regular < rows[8]
    assert regular < 2.0  # the 2N/p guarantee
