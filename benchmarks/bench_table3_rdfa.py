"""Table 3: RDFA of the weak-scaling runs (Uniform and Zipf).

Paper values (selected): Uniform — HykSort 1.069 -> 1.205, SDS-Sort
1.0025 -> 1.0546 (both near 1, SDS creeping up with p); Zipf —
HykSort infinity everywhere (OOM), SDS-Sort 1.68 -> 2.68.

Reproduced with the count-space evaluator at the paper's own scale
(1e8 records per rank, up to 131,072 ranks) — loads are partition
arithmetic, so no record data is needed.
"""

from __future__ import annotations

import math

from repro.runner import MEM_FACTOR
from repro.simfast import UniverseModel, countspace_loads, fmt_p
from repro.metrics import rdfa

from _helpers import PAPER_N_PER_RANK, PAPER_P_LIST, emit, fmt_rdfa

ALPHA = 0.7  # the paper's "Zipf(0.7-2.0)" row, lower edge


def _rdfa_or_oom(model, p, method):
    loads = countspace_loads(model, PAPER_N_PER_RANK, p, method=method,
                             seed=p)
    factor = loads.max() / PAPER_N_PER_RANK
    if 1 + factor > MEM_FACTOR:
        return math.inf
    return rdfa(loads)


def test_table3_rdfa(benchmark):
    uni = UniverseModel.uniform()
    zpf = UniverseModel.zipf(ALPHA)

    def compute():
        table = {}
        for p in PAPER_P_LIST:
            table[p] = {
                ("uniform", "hyksort"): _rdfa_or_oom(uni, p, "hyksort"),
                ("uniform", "sds"): _rdfa_or_oom(uni, p, "fast"),
                ("uniform", "sds-stable"): _rdfa_or_oom(uni, p, "stable"),
                ("zipf", "hyksort"): _rdfa_or_oom(zpf, p, "hyksort"),
                ("zipf", "sds"): _rdfa_or_oom(zpf, p, "fast"),
                ("zipf", "sds-stable"): _rdfa_or_oom(zpf, p, "stable"),
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [f"{'p':>6s} | {'Uni/Hyk':>10s} {'Uni/SDS':>10s} {'Uni/SDS-st':>11s}"
            f" | {'Zipf/Hyk':>10s} {'Zipf/SDS':>10s} {'Zipf/SDS-st':>11s}"]
    for p in PAPER_P_LIST:
        t = table[p]
        rows.append(
            f"{fmt_p(p):>6s} | {fmt_rdfa(t[('uniform', 'hyksort')]):>10s} "
            f"{fmt_rdfa(t[('uniform', 'sds')]):>10s} "
            f"{fmt_rdfa(t[('uniform', 'sds-stable')]):>11s} | "
            f"{fmt_rdfa(t[('zipf', 'hyksort')]):>10s} "
            f"{fmt_rdfa(t[('zipf', 'sds')]):>10s} "
            f"{fmt_rdfa(t[('zipf', 'sds-stable')]):>11s}"
        )
    rows.append("")
    rows.append("paper: Uniform SDS 1.0025->1.0546; Zipf HykSort all inf, "
                "SDS 1.68->2.68")
    emit("table3_rdfa", rows)

    # uniform: everyone balanced (RDFA ~ 1), SDS creeps up with p
    for p in PAPER_P_LIST:
        for key, val in table[p].items():
            if key[0] == "uniform":
                assert val < 1.3
    assert (table[131072][("uniform", "sds")]
            > table[512][("uniform", "sds")])
    # zipf: HykSort OOMs everywhere, SDS bounded well under 4
    for p in PAPER_P_LIST:
        assert math.isinf(table[p][("zipf", "hyksort")])
        assert table[p][("zipf", "sds")] < 4.0
        assert table[p][("zipf", "sds-stable")] < 4.0
    # fast and stable agree (paper shows identical values)
    for p in PAPER_P_LIST:
        a = table[p][("zipf", "sds")]
        b = table[p][("zipf", "sds-stable")]
        assert abs(a - b) / a < 0.05
